//! Property tests for the workspace lock graph.
//!
//! Two generated program families:
//!
//! * **Ordered**: every function acquires its locks in globally increasing
//!   index order and only calls higher-numbered functions, so the
//!   acquisition graph is a DAG by construction — the analysis must report
//!   zero cycles, however the bodies interleave.
//! * **Chaotic**: arbitrary acquisitions and calls (including recursion).
//!   Whatever cycles the analysis reports must be *real* cycles of its own
//!   built graph: a closed lock chain whose every step is a reported edge
//!   with a non-empty witness path.

use proptest::prelude::*;
use xgs_analysis::lockgraph::analyze_files;

const FUNCS: usize = 6;
/// Locks per function in the ordered family (function `i` owns lock
/// indices `[i*K, i*K + K)`).
const K: usize = 3;

/// Ordered family: locks sorted within each function, calls only upward.
fn ordered_program(vals: &[u32]) -> String {
    let mut src = String::new();
    for i in 0..FUNCS {
        let chunk = &vals[i * 4..i * 4 + 4];
        let mut locks: Vec<usize> = chunk.iter().map(|&v| i * K + (v as usize) % K).collect();
        locks.sort_unstable();
        locks.dedup();
        src.push_str(&format!("fn f{i}() {{\n"));
        for (g, l) in locks.iter().enumerate() {
            src.push_str(&format!("    let g{g} = lk{l}.lock();\n"));
        }
        // Call upward only, while holding: every propagated edge goes from
        // a lower lock index to a strictly higher one.
        if i + 1 < FUNCS {
            let callee = i + 1 + (chunk[0] as usize) % (FUNCS - i - 1);
            src.push_str(&format!("    f{callee}();\n"));
        }
        src.push_str("}\n");
    }
    src
}

/// Chaotic family: each op is an acquisition of an arbitrary lock or a
/// call to an arbitrary function (self-calls included).
fn chaotic_program(vals: &[u32]) -> String {
    let locks_total = FUNCS * K;
    let mut src = String::new();
    for i in 0..FUNCS {
        let chunk = &vals[i * 5..i * 5 + 5];
        src.push_str(&format!("fn f{i}() {{\n"));
        for (g, &v) in chunk.iter().enumerate() {
            match v % 3 {
                0 => src.push_str(&format!(
                    "    let g{g} = lk{}.lock();\n",
                    (v as usize / 3) % locks_total
                )),
                1 => src.push_str(&format!(
                    "    lk{}.lock().touch();\n",
                    (v as usize / 3) % locks_total
                )),
                _ => src.push_str(&format!("    f{}();\n", (v as usize / 3) % FUNCS)),
            }
        }
        src.push_str("}\n");
    }
    src
}

fn analyze(src: String) -> xgs_analysis::Analysis {
    analyze_files(&[("crates/prop/src/lib.rs".to_string(), src.into_bytes())])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ordered_acquisitions_never_cycle(vals in proptest::collection::vec(0u32..1000, FUNCS * 4)) {
        let src = ordered_program(&vals);
        let analysis = analyze(src.clone());
        prop_assert!(
            analysis.cycles.is_empty(),
            "ordered program produced cycles: {:?}\n{}",
            analysis.cycles.iter().map(|c| c.locks.clone()).collect::<Vec<_>>(),
            src
        );
        prop_assert!(
            analysis.findings.iter().all(|f| f.rule != "lock-cycle"),
            "cycle finding without a cycle"
        );
    }

    #[test]
    fn reported_cycles_are_real_cycles_of_the_built_graph(
        vals in proptest::collection::vec(0u32..100_000, FUNCS * 5),
    ) {
        let src = chaotic_program(&vals);
        let analysis = analyze(src.clone());
        for c in &analysis.cycles {
            prop_assert!(c.locks.len() >= 2, "degenerate cycle {:?}", c.locks);
            prop_assert_eq!(c.locks.first(), c.locks.last());
            prop_assert_eq!(c.edges.len(), c.locks.len() - 1);
            for (step, &ei) in c.edges.iter().enumerate() {
                let e = analysis.edges.get(ei);
                prop_assert!(e.is_some(), "edge index {} out of range", ei);
                let e = e.unwrap();
                prop_assert_eq!(&e.from, &c.locks[step]);
                prop_assert_eq!(&e.to, &c.locks[step + 1]);
                prop_assert!(
                    !e.witness.is_empty(),
                    "edge {} -> {} reported without a witness site",
                    e.from,
                    e.to
                );
            }
        }
        // Every cycle must also have been surfaced as a finding (unless the
        // program text carries an allow, which these generated programs
        // never do).
        let cycle_findings = analysis.findings.iter().filter(|f| f.rule == "lock-cycle").count();
        prop_assert_eq!(cycle_findings, analysis.cycles.len());
    }
}

//! A small hand-rolled Rust lexer over raw bytes.
//!
//! The lint rules in [`crate::rules`] operate on token streams, never on
//! raw substring matches, so that rule names inside string literals or
//! comments can never trigger (or suppress) a rule. The lexer therefore
//! only needs to get *token boundaries* right — it keeps no symbol
//! information and does not validate the program.
//!
//! Two properties are load-bearing and property-tested:
//!
//! 1. **Total**: lexing never panics, on *any* byte string (including
//!    invalid UTF-8, unterminated literals, and stray punctuation).
//!    Unrecognized bytes become [`TokenKind::Unknown`].
//! 2. **Lossless**: the token spans tile the input exactly — concatenating
//!    `src[tok.start..tok.end]` over all tokens reproduces the input byte
//!    for byte. This is what makes line/column reporting trustworthy.

/// What a token is, at the granularity the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines, carriage returns.
    Whitespace,
    /// `// ...` up to (not including) the newline.
    LineComment,
    /// `/* ... */`, nesting respected; unterminated runs to EOF.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// `'lifetime` (no closing quote).
    Lifetime,
    /// Integer or float literal, with suffix if present.
    Number,
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
    /// `'c'`, `b'c'`. Unterminated runs to EOF.
    Literal,
    /// A single punctuation byte (`.`, `(`, `=`, …). Multi-byte operators
    /// are deliberately left as individual bytes; rules match sequences.
    Punct(u8),
    /// Any byte the lexer has no rule for (e.g. stray non-ASCII outside a
    /// literal). Always a single byte.
    Unknown,
}

/// One token: kind plus the half-open byte span it covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
}

impl Token {
    /// The bytes this token covers.
    pub fn text<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        &src[self.start..self.end]
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex an entire source file. Total and lossless (see module docs).
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < src.len() {
        let start = i;
        let b = src[i];
        let kind = if b.is_ascii_whitespace() {
            while i < src.len() && src[i].is_ascii_whitespace() {
                i += 1;
            }
            TokenKind::Whitespace
        } else if b == b'/' && src.get(i + 1) == Some(&b'/') {
            while i < src.len() && src[i] != b'\n' {
                i += 1;
            }
            TokenKind::LineComment
        } else if b == b'/' && src.get(i + 1) == Some(&b'*') {
            i += 2;
            let mut depth = 1usize;
            while i < src.len() && depth > 0 {
                if src[i] == b'/' && src.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if src[i] == b'*' && src.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenKind::BlockComment
        } else if let Some(end) = raw_or_byte_string(src, i) {
            i = end;
            TokenKind::Literal
        } else if is_ident_start(b) {
            while i < src.len() && is_ident_continue(src[i]) {
                i += 1;
            }
            TokenKind::Ident
        } else if b.is_ascii_digit() {
            i = lex_number(src, i);
            TokenKind::Number
        } else if b == b'"' {
            i = lex_quoted(src, i + 1, b'"');
            TokenKind::Literal
        } else if b == b'\'' {
            let (end, kind) = lex_quote_or_lifetime(src, i);
            i = end;
            kind
        } else if b.is_ascii() {
            i += 1;
            TokenKind::Punct(b)
        } else {
            i += 1;
            TokenKind::Unknown
        };
        toks.push(Token {
            kind,
            start,
            end: i,
        });
    }
    toks
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, and raw identifiers
/// (`r#ident`). Returns the end offset when `src[i..]` starts one.
fn raw_or_byte_string(src: &[u8], i: usize) -> Option<usize> {
    let b = src[i];
    if b != b'r' && b != b'b' {
        return None;
    }
    let mut j = i + 1;
    if b == b'b' && src.get(j) == Some(&b'r') {
        j += 1;
    }
    let raw = b == b'r' || j > i + 1;
    let mut hashes = 0usize;
    while raw && src.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    match src.get(j) {
        Some(&b'"') => {
            // Raw strings have no escapes: scan for `"` + hashes closers.
            if raw {
                j += 1;
                while j < src.len() {
                    if src[j] == b'"' && src[j + 1..].iter().take(hashes).all(|&h| h == b'#') {
                        return Some(j + 1 + hashes.min(src.len() - j - 1));
                    }
                    j += 1;
                }
                Some(src.len())
            } else {
                // Plain byte string `b"…"` with escapes.
                Some(lex_quoted(src, j + 1, b'"'))
            }
        }
        Some(&b'\'') if b == b'b' && hashes == 0 && j == i + 1 => {
            // Byte char `b'x'`.
            Some(lex_quoted(src, j + 1, b'\''))
        }
        _ if raw && hashes == 1 && src.get(j).map(|&c| is_ident_start(c)) == Some(true) => {
            // Raw identifier `r#match` — token includes the `r#`.
            while j < src.len() && is_ident_continue(src[j]) {
                j += 1;
            }
            Some(j)
        }
        _ => None,
    }
}

/// Scan a quoted literal body (after the opening quote) honoring `\`
/// escapes; unterminated literals run to EOF.
fn lex_quoted(src: &[u8], mut i: usize, close: u8) -> usize {
    while i < src.len() {
        if src[i] == b'\\' {
            i = (i + 2).min(src.len());
        } else if src[i] == close {
            return i + 1;
        } else {
            i += 1;
        }
    }
    src.len()
}

/// Distinguish `'a'` / `'\n'` (char literal) from `'a` (lifetime).
fn lex_quote_or_lifetime(src: &[u8], i: usize) -> (usize, TokenKind) {
    match src.get(i + 1) {
        Some(&b'\\') => (lex_quoted(src, i + 1, b'\''), TokenKind::Literal),
        Some(&c) if is_ident_start(c) => {
            let mut j = i + 1;
            while j < src.len() && is_ident_continue(src[j]) {
                j += 1;
            }
            if src.get(j) == Some(&b'\'') {
                (j + 1, TokenKind::Literal)
            } else {
                (j, TokenKind::Lifetime)
            }
        }
        Some(_) => (lex_quoted(src, i + 1, b'\''), TokenKind::Literal),
        None => (i + 1, TokenKind::Unknown),
    }
}

/// Numbers: digits, then a fractional part only when followed by another
/// digit (so `1..5` lexes as `1`, `.`, `.`, `5`), exponent, and any
/// alphanumeric suffix (`u64`, `f32`, hex digits after `0x`).
fn lex_number(src: &[u8], mut i: usize) -> usize {
    while i < src.len() && (src[i].is_ascii_alphanumeric() || src[i] == b'_') {
        i += 1;
    }
    if i + 1 < src.len() && src[i] == b'.' && src[i + 1].is_ascii_digit() {
        i += 1;
        while i < src.len() && (src[i].is_ascii_alphanumeric() || src[i] == b'_') {
            i += 1;
        }
    }
    // Signed exponent: `1e-9` (the alnum scan stops at `-`).
    if i + 1 < src.len()
        && (src[i] == b'-' || src[i] == b'+')
        && src.get(i.wrapping_sub(1)).map(|b| b | 0x20) == Some(b'e')
        && src[i + 1].is_ascii_digit()
    {
        i += 1;
        while i < src.len() && (src[i].is_ascii_alphanumeric() || src[i] == b'_') {
            i += 1;
        }
    }
    i
}

/// Byte offsets of each line start, for offset→(line, column) reporting.
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    pub fn new(src: &[u8]) -> LineIndex {
        let mut starts = vec![0];
        for (i, &b) in src.iter().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based (line, column) of a byte offset.
    pub fn locate(&self, offset: usize) -> (usize, usize) {
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.starts[line] + 1)
    }

    /// 1-based line of a byte offset.
    pub fn line(&self, offset: usize) -> usize {
        self.locate(offset).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src.as_bytes())
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    fn lossless(src: &[u8]) {
        let toks = lex(src);
        let mut rebuilt = Vec::new();
        let mut prev_end = 0;
        for t in &toks {
            assert_eq!(t.start, prev_end, "gap/overlap at {}", t.start);
            assert!(t.end > t.start, "empty token at {}", t.start);
            rebuilt.extend_from_slice(&src[t.start..t.end]);
            prev_end = t.end;
        }
        assert_eq!(prev_end, src.len());
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn idents_and_calls() {
        assert_eq!(
            kinds("a.unwrap()"),
            vec![
                TokenKind::Ident,
                TokenKind::Punct(b'.'),
                TokenKind::Ident,
                TokenKind::Punct(b'('),
                TokenKind::Punct(b')'),
            ]
        );
    }

    #[test]
    fn strings_hide_idents() {
        let toks = lex(b"let s = \"a.unwrap()\";");
        let lits: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(lits.len(), 1);
        assert_eq!(lits[0].text(b"let s = \"a.unwrap()\";"), b"\"a.unwrap()\"");
    }

    #[test]
    fn raw_strings_and_bytes() {
        for src in [
            "r\"abc\"",
            "r#\"a \" b\"#",
            "br#\"x\"#",
            "b\"esc\\\"ok\"",
            "b'q'",
            "r#match",
        ] {
            let toks = lex(src.as_bytes());
            assert_eq!(toks.len(), 1, "{src:?} lexed as {toks:?}");
            lossless(src.as_bytes());
        }
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(kinds("'a"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'a'"), vec![TokenKind::Literal]);
        assert_eq!(kinds("'\\n'"), vec![TokenKind::Literal]);
        assert_eq!(
            kinds("&'static str"),
            vec![
                TokenKind::Punct(b'&'),
                TokenKind::Lifetime,
                TokenKind::Ident,
            ]
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        assert_eq!(
            kinds("1..5"),
            vec![
                TokenKind::Number,
                TokenKind::Punct(b'.'),
                TokenKind::Punct(b'.'),
                TokenKind::Number,
            ]
        );
        assert_eq!(kinds("1.5e-9f64"), vec![TokenKind::Number]);
        assert_eq!(kinds("0x1f_u32"), vec![TokenKind::Number]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            kinds("/* a /* b */ c */ x"),
            vec![TokenKind::BlockComment, TokenKind::Ident]
        );
    }

    #[test]
    fn lossless_on_awkward_inputs() {
        for src in [
            &b"fn main() { let x = 1..2; }"[..],
            b"\"unterminated",
            b"/* unterminated",
            b"'",
            b"'\\",
            b"b\"",
            b"r#\"no close",
            b"\xff\xfe utf8 junk \x80",
            b"",
            b"r#",
            b"br",
        ] {
            lossless(src);
        }
    }

    #[test]
    fn line_index_locates() {
        let src = b"ab\ncd\n\nef";
        let idx = LineIndex::new(src);
        assert_eq!(idx.locate(0), (1, 1));
        assert_eq!(idx.locate(4), (2, 2));
        assert_eq!(idx.locate(7), (4, 1));
    }
}

//! `xgs-lint` — walk every workspace source file and enforce the project
//! rule set (see `xgs_analysis::rules`), then build the whole-workspace
//! lock-acquisition graph (see `xgs_analysis::lockgraph`) and report any
//! cycle or declared-order inversion with its witness path.
//!
//! ```text
//! xgs-lint [--json] [--format text|json|sarif] [--root <dir>] [paths...]
//! ```
//!
//! With no paths, lints every `.rs` file under the workspace root
//! (default `.`), skipping only `target/` build output. The `vendor/`
//! dependency shims are linted like first-party code: they hold most of
//! the workspace's `unsafe` and raw syscalls, which is exactly the
//! surface the unsafe-audit rules exist for. Exit status is nonzero when
//! any finding — including an unjustified allow — survives.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xgs_analysis::lockgraph::analyze_files;
use xgs_analysis::rules::{lint_file, report_json, report_sarif, Finding, RULES};

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => format = "json".to_string(),
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" || f == "sarif" => format = f,
                Some(f) => {
                    eprintln!("--format must be text, json, or sarif (got {f})");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--format needs a value: text, json, or sarif");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: xgs-lint [--json] [--format text|json|sarif] [--root <dir>] [paths...]"
                );
                println!("rules:");
                for (name, summary) in RULES {
                    println!("  {name:<34} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        walk(&root, &mut paths);
        paths.sort();
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut allows = 0usize;
    let mut sources: Vec<(String, Vec<u8>)> = Vec::new();
    for path in &paths {
        let Ok(src) = std::fs::read(path) else {
            eprintln!("xgs-lint: cannot read {}", path.display());
            return ExitCode::from(2);
        };
        let rel = workspace_relative(&root, path);
        let lint = lint_file(&rel, &src);
        allows += lint.justified_allows;
        findings.extend(lint.findings);
        sources.push((rel, src));
    }

    // The lock graph is a whole-workspace property: it only exists once
    // every file's acquisitions and calls are on the table.
    let graph = analyze_files(&sources);
    findings.extend(graph.findings);
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));

    let files = sources.len();
    match format.as_str() {
        "json" => println!("{}", report_json(files, allows, &findings)),
        "sarif" => println!("{}", report_sarif(&findings)),
        _ => {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "xgs-lint: {} file(s), {} finding(s), {} justified allow(s), {} lock edge(s), {} lock cycle(s)",
                files,
                findings.len(),
                allows,
                graph.edges.len(),
                graph.cycles.len(),
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Collect `.rs` files under `dir`, skipping build output.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with `/` separators, for the path-scoped rules
/// and stable report output.
fn workspace_relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy().replace('\\', "/");
    s.trim_start_matches("./").to_string()
}

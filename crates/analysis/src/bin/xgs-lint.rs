//! `xgs-lint` — walk every workspace source file and enforce the project
//! rule set (see `xgs_analysis::rules`).
//!
//! ```text
//! xgs-lint [--json] [--root <dir>] [paths...]
//! ```
//!
//! With no paths, lints every `.rs` file under the workspace root
//! (default `.`), skipping `target/` build output and the `vendor/`
//! dependency shims (which mirror external crates; the path-scoped rules
//! wouldn't apply there and the shims are linted by `clippy` like
//! everything else). Exit status is nonzero when any finding — including
//! an unjustified allow — survives.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xgs_analysis::rules::{lint_file, report_json, Finding, RULES};

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: xgs-lint [--json] [--root <dir>] [paths...]");
                println!("rules:");
                for (name, summary) in RULES {
                    println!("  {name:<26} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        walk(&root, &mut paths);
        paths.sort();
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut allows = 0usize;
    let mut files = 0usize;
    for path in &paths {
        let Ok(src) = std::fs::read(path) else {
            eprintln!("xgs-lint: cannot read {}", path.display());
            return ExitCode::from(2);
        };
        files += 1;
        let rel = workspace_relative(&root, path);
        let lint = lint_file(&rel, &src);
        allows += lint.justified_allows;
        findings.extend(lint.findings);
    }

    if json {
        println!("{}", report_json(files, allows, &findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "xgs-lint: {} file(s), {} finding(s), {} justified allow(s)",
            files,
            findings.len(),
            allows
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Collect `.rs` files under `dir`, skipping build output and the
/// vendored dependency shims.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "vendor" {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative path with `/` separators, for the path-scoped rules
/// and stable report output.
fn workspace_relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy().replace('\\', "/");
    s.trim_start_matches("./").to_string()
}

//! Workspace lock-acquisition graph: the call-graph-aware deadlock pass
//! behind the `lock-order` and `lock-cycle` rules.
//!
//! The per-file rules in [`crate::rules`] are deliberately intra-procedural;
//! deadlocks are not. `A` locks `q.inner` and calls `B`, `B` locks
//! `metrics` — no single function ever holds two guards, yet the workspace
//! now contains the edge `inner -> metrics`, and one inverted pair anywhere
//! else closes a cycle. This pass builds that graph for the whole workspace
//! in three steps over the existing token stream (no new parser):
//!
//! 1. **Function index.** Every `fn` item is scanned once, recording its
//!    lock acquisitions (`.lock()` and `.wait()` receivers, with the set of
//!    locks held at that point — guard tracking reuses the same discipline
//!    the old intra-procedural rule enforced: `let`-bound guards live to
//!    end of block or `drop(g)`, temporaries to end of statement) and its
//!    outgoing calls (free calls, `path::calls`, and `self.method()` calls,
//!    each with the held set at the call site). Lock identity is
//!    `crate::receiver` — the last field name before `.lock()` — so
//!    `server::inner` and `rayon::idle` are distinct nodes even if a field
//!    name repeats across crates.
//! 2. **Held-set propagation.** A fixpoint computes, per function, the set
//!    of locks it *may* acquire transitively (calls resolve by bare name
//!    within the same crate — an over-approximation that unions same-named
//!    functions rather than missing edges). Each entry carries a witness
//!    chain of call sites down to the concrete `.lock()` line.
//! 3. **Graph + report.** Holding `h` while acquiring `l` (directly or via
//!    a call that may acquire `l`) adds the edge `h -> l`. Any cycle —
//!    including a self-loop, i.e. re-entrant acquisition of a non-reentrant
//!    mutex — is a `lock-cycle` finding with the full witness path (function
//!    chain and `file:line` per edge). The server's documented
//!    `BatchQueue::inner ≺ ModelRegistry::models ≺ Shared::metrics` order is
//!    additionally checked as a consequence: an edge from a higher-ranked to
//!    a lower-ranked declared lock is a `lock-order` finding even before any
//!    reverse edge exists to close the cycle.
//!
//! Findings are suppressible exactly like per-file rules, with a justified
//! `// xgs-lint: allow(lock-cycle): <why>` on or directly above the
//! reported acquisition line.

use crate::lexer::{lex, LineIndex, TokenKind};
use crate::rules::{parse_allows, sig_tokens, test_regions, Finding, Sig};
use std::collections::BTreeMap;

/// One step of a witness path: `func` at `path:line` either acquires the
/// edge's target lock (last step) or calls the next function in the chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    pub func: String,
    pub path: String,
    pub line: usize,
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}:{})", self.func, self.path, self.line)
    }
}

/// A may-happen acquisition edge: some call path acquires `to` while `from`
/// is held. `witness` starts at the function holding `from` and ends at the
/// site that acquires `to`.
#[derive(Clone, Debug)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub witness: Vec<Site>,
}

/// A cycle in the lock graph. `locks` lists the nodes in order with
/// `locks[0]` repeated at the end; `edges[i]` indexes the
/// [`Analysis::edges`] entry realizing `locks[i] -> locks[i + 1]`.
#[derive(Clone, Debug)]
pub struct Cycle {
    pub locks: Vec<String>,
    pub edges: Vec<usize>,
}

/// The built graph plus everything reportable about it.
pub struct Analysis {
    pub edges: Vec<Edge>,
    pub cycles: Vec<Cycle>,
    pub findings: Vec<Finding>,
}

/// The server's declared lock order, least to greatest (see
/// `crates/server/src/lib.rs`). Node ids are `crate::receiver`.
const DECLARED: &[(&str, &str)] = &[
    ("server::inner", "BatchQueue::inner"),
    ("server::models", "ModelRegistry::models"),
    ("server::metrics", "Shared::metrics"),
];

/// Keywords that can directly precede `(` in expression position without
/// being calls.
/// (`drop` is listed because `drop(expr)` is `std::mem::drop`, not a call
/// into an `impl Drop` in the same crate — destructors run where values
/// die, which name resolution cannot order.)
const NOT_CALLEES: &[&[u8]] = &[
    b"if",
    b"while",
    b"for",
    b"match",
    b"return",
    b"loop",
    b"in",
    b"as",
    b"move",
    b"unsafe",
    b"let",
    b"else",
    b"fn",
    b"await",
    b"dyn",
    b"ref",
    b"mut",
    b"pub",
    b"use",
    b"mod",
    b"impl",
    b"where",
    b"break",
    b"continue",
    b"drop",
];

/// Cap on rendered witness-chain length; deeper chains are elided in the
/// middle of the message but the graph itself is exact.
const MAX_CHAIN: usize = 8;

struct Acq {
    lock: String,
    line: usize,
    held: Vec<String>,
}

struct Call {
    callee: String,
    line: usize,
    held: Vec<String>,
}

struct FnDef {
    name: String,
    krate: String,
    path: String,
    acquires: Vec<Acq>,
    calls: Vec<Call>,
}

/// Crate a workspace-relative path belongs to; top-level `src/`, `tests/`,
/// `benches/` files are the root package.
fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .or_else(|| path.strip_prefix("vendor/"))
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
        .to_string()
}

/// Resolve the receiver of `.lock()` / `.wait()`: the nearest field or
/// binding name walking the dotted chain backwards, seeing through tuple
/// indices (`self.idle.0.lock()` -> `idle`) and index expressions
/// (`self.slots[i].lock()` -> `slots`). Returns `None` for receivers with
/// no stable name (call results, literals).
fn receiver_of(sig: &[Sig<'_>], mut k: usize) -> Option<String> {
    loop {
        match sig[k].kind {
            TokenKind::Ident => {
                return Some(String::from_utf8_lossy(sig[k].text).into_owned());
            }
            // Tuple-field access: step over `name . 0`.
            TokenKind::Number if k >= 2 && sig[k - 1].is_punct(b'.') => k -= 2,
            TokenKind::Number => return None,
            TokenKind::Punct(b']') => {
                // Index expression: skip back to the matching `[`.
                let mut depth = 0i32;
                loop {
                    if sig[k].is_punct(b']') {
                        depth += 1;
                    } else if sig[k].is_punct(b'[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        return None;
                    }
                    k -= 1;
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            _ => return None,
        }
    }
}

/// Scan one file into function definitions. Mirrors the guard-holding
/// discipline documented on the rules: `let`-bound guards are held to the
/// end of their block or an explicit `drop(name)`; an unbound `.lock()`
/// temporary to the end of its statement. Test regions are skipped — test
/// helpers lock freely and never run under production contention.
fn scan_file(path: &str, src: &[u8]) -> Vec<FnDef> {
    struct Held {
        node: String,
        depth: i32,
        var: Option<Vec<u8>>,
    }

    let toks = lex(src);
    let idx = LineIndex::new(src);
    let sig = sig_tokens(src, &toks);
    let tests = test_regions(&sig);
    let in_test = |off: usize| tests.iter().any(|&(s, e)| off >= s && off < e);
    let krate = crate_of(path);

    let mut fns = Vec::new();
    let mut w = 0;
    while w < sig.len() {
        if !sig[w].is_ident(b"fn") || in_test(sig[w].start) {
            w += 1;
            continue;
        }
        let Some(name_tok) = sig.get(w + 1).filter(|t| t.kind == TokenKind::Ident) else {
            w += 1;
            continue;
        };
        let name = String::from_utf8_lossy(name_tok.text).into_owned();
        let mut j = w + 2;
        while j < sig.len() && !sig[j].is_punct(b'{') && !sig[j].is_punct(b';') {
            j += 1;
        }
        if j >= sig.len() || sig[j].is_punct(b';') {
            w = j + 1;
            continue;
        }

        let mut def = FnDef {
            name,
            krate: krate.clone(),
            path: path.to_string(),
            acquires: Vec::new(),
            calls: Vec::new(),
        };
        let mut depth = 1i32;
        let mut held: Vec<Held> = Vec::new();
        let mut stmt_let: Option<Vec<u8>> = None;
        // Paren depth within the current statement: a `.lock()` at
        // depth > 0 sits inside a call argument or closure, so its guard
        // is a temporary of that subexpression, not the `let` binding.
        let mut stmt_paren = 0i32;
        j += 1;
        while j < sig.len() && depth > 0 {
            let s = &sig[j];
            if s.is_punct(b'(') {
                stmt_paren += 1;
            } else if s.is_punct(b')') {
                stmt_paren = (stmt_paren - 1).max(0);
            }
            if s.is_punct(b'{') {
                depth += 1;
                stmt_paren = 0;
            } else if s.is_punct(b'}') {
                depth -= 1;
                // A `}` closing back to a temporary's own depth ends the
                // statement-expression its scrutinee belonged to (`if let
                // Some(x) = m.lock().pop() { .. }` holds the guard through
                // the body, not beyond it). Slightly eager for `match`
                // scrutinees — a missed tail edge, never a false one.
                held.retain(|h| h.depth < depth || (h.depth == depth && h.var.is_some()));
                stmt_paren = 0;
            } else if s.is_punct(b';') {
                held.retain(|h| h.var.is_some() || h.depth < depth);
                stmt_let = None;
                stmt_paren = 0;
            } else if s.is_ident(b"let") {
                // `if let` / `while let` scrutinee guards are temporaries
                // of the statement-expression, and `let Some(x)` /
                // `let pat::Path(x)` destructures a pattern — neither
                // names a guard that `drop(name)` could later release.
                let in_cond =
                    j >= 1 && (sig[j - 1].is_ident(b"if") || sig[j - 1].is_ident(b"while"));
                let mut k = j + 1;
                if sig.get(k).is_some_and(|s| s.is_ident(b"mut")) {
                    k += 1;
                }
                let ctor = sig
                    .get(k + 1)
                    .is_some_and(|n| n.is_punct(b'(') || n.is_punct(b':'));
                stmt_let = if in_cond || ctor {
                    None
                } else {
                    sig.get(k)
                        .filter(|s| s.kind == TokenKind::Ident)
                        .map(|s| s.text.to_vec())
                };
            } else if s.is_ident(b"drop")
                && sig.get(j + 1).is_some_and(|n| n.is_punct(b'('))
                && sig.get(j + 3).is_some_and(|n| n.is_punct(b')'))
            {
                if let Some(v) = sig.get(j + 2) {
                    held.retain(|h| h.var.as_deref() != Some(v.text));
                }
            } else if (s.is_ident(b"lock") || s.is_ident(b"wait"))
                && j >= 2
                && sig[j - 1].is_punct(b'.')
                && sig.get(j + 1).is_some_and(|n| n.is_punct(b'('))
            {
                if let Some(recv) = receiver_of(&sig, j - 2) {
                    let node = format!("{krate}::{recv}");
                    // `.wait()` receivers join the graph as acquisition
                    // targets but do not hold anything afterwards.
                    let holds = s.is_ident(b"lock");
                    def.acquires.push(Acq {
                        lock: node.clone(),
                        line: idx.line(s.start),
                        held: held.iter().map(|h| h.node.clone()).collect(),
                    });
                    if holds {
                        held.push(Held {
                            node,
                            depth,
                            var: if stmt_paren == 0 {
                                stmt_let.clone()
                            } else {
                                None
                            },
                        });
                    }
                }
            } else if s.kind == TokenKind::Ident
                && sig.get(j + 1).is_some_and(|n| n.is_punct(b'('))
                && !NOT_CALLEES.iter().any(|k| s.is_ident(k))
            {
                // A call this pass can resolve: free (`helper(..)`), path
                // (`queue::push(..)`), or explicit-self method
                // (`self.drain(..)`). Arbitrary method calls are *not*
                // resolved by bare name — `vec.push()` must not alias a
                // `fn push` that locks — so receiver-typed dispatch stays
                // out of the graph rather than poisoning it.
                let dotted = j >= 1 && sig[j - 1].is_punct(b'.');
                let self_method = j >= 2 && dotted && sig[j - 2].is_ident(b"self");
                if !dotted || self_method {
                    def.calls.push(Call {
                        callee: String::from_utf8_lossy(s.text).into_owned(),
                        line: idx.line(s.start),
                        held: held.iter().map(|h| h.node.clone()).collect(),
                    });
                }
            }
            j += 1;
        }
        fns.push(def);
        w = j;
    }
    fns
}

/// Build the workspace lock graph and report violations. `files` holds
/// `(workspace-relative path, source)` pairs for every linted file; allow
/// comments in those files suppress findings exactly like per-file rules.
pub fn analyze_files(files: &[(String, Vec<u8>)]) -> Analysis {
    let mut sorted: Vec<&(String, Vec<u8>)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));

    let mut fns: Vec<FnDef> = Vec::new();
    for (path, src) in &sorted {
        fns.extend(scan_file(path, src));
    }

    // Same-crate name index. Duplicate names union their targets: better a
    // spurious edge a human dismisses than a cycle the pass cannot see.
    let mut index: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        index
            .entry((f.krate.clone(), f.name.clone()))
            .or_default()
            .push(i);
    }

    // Fixpoint: may[f] maps each lock the function may transitively
    // acquire to a witness chain ending at the concrete `.lock()` site.
    // Monotone (entries are only added, never changed), so it terminates
    // in at most |locks| * |fns| sweeps; in practice two or three.
    let mut may: Vec<BTreeMap<String, Vec<Site>>> = fns
        .iter()
        .map(|f| {
            let mut m = BTreeMap::new();
            for a in &f.acquires {
                m.entry(a.lock.clone()).or_insert_with(|| {
                    vec![Site {
                        func: f.name.clone(),
                        path: f.path.clone(),
                        line: a.line,
                    }]
                });
            }
            m
        })
        .collect();
    loop {
        let mut additions: Vec<(usize, String, Vec<Site>)> = Vec::new();
        for (fi, f) in fns.iter().enumerate() {
            for call in &f.calls {
                let key = (f.krate.clone(), call.callee.clone());
                for &ti in index.get(&key).into_iter().flatten() {
                    for (lock, chain) in &may[ti] {
                        if !may[fi].contains_key(lock) {
                            let mut witness = vec![Site {
                                func: f.name.clone(),
                                path: f.path.clone(),
                                line: call.line,
                            }];
                            witness.extend(chain.iter().take(MAX_CHAIN - 1).cloned());
                            additions.push((fi, lock.clone(), witness));
                        }
                    }
                }
            }
        }
        let mut changed = false;
        for (fi, lock, witness) in additions {
            if let std::collections::btree_map::Entry::Vacant(slot) = may[fi].entry(lock) {
                slot.insert(witness);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: held `h` at a direct acquisition of `l`, or at a call that may
    // acquire `l`. First witness (file order, then direct-before-call) wins.
    let mut edges: Vec<Edge> = Vec::new();
    let mut edge_index: BTreeMap<(String, String), usize> = BTreeMap::new();
    let add_edge = |edges: &mut Vec<Edge>,
                    edge_index: &mut BTreeMap<(String, String), usize>,
                    from: &str,
                    to: &str,
                    witness: Vec<Site>| {
        edge_index
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| {
                edges.push(Edge {
                    from: from.to_string(),
                    to: to.to_string(),
                    witness,
                });
                edges.len() - 1
            });
    };
    for f in &fns {
        for a in &f.acquires {
            let site = Site {
                func: f.name.clone(),
                path: f.path.clone(),
                line: a.line,
            };
            for h in &a.held {
                add_edge(&mut edges, &mut edge_index, h, &a.lock, vec![site.clone()]);
            }
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            let key = (f.krate.clone(), call.callee.clone());
            for &ti in index.get(&key).into_iter().flatten() {
                for (lock, chain) in &may[ti] {
                    let mut witness = vec![Site {
                        func: f.name.clone(),
                        path: f.path.clone(),
                        line: call.line,
                    }];
                    witness.extend(chain.iter().take(MAX_CHAIN - 1).cloned());
                    for h in &call.held {
                        add_edge(&mut edges, &mut edge_index, h, lock, witness.clone());
                    }
                }
            }
        }
    }

    let cycles = find_cycles(&edges);

    // Findings. A cycle is anchored at the acquisition site closing its
    // first edge; a declared-order inversion at its own acquisition site.
    let mut findings = Vec::new();
    for cy in &cycles {
        let first = &edges[cy.edges[0]];
        let anchor = first.witness.last().expect("witness chains are non-empty");
        let mut msg = format!("lock acquisition cycle: {}", cy.locks.join(" -> "));
        for (i, &ei) in cy.edges.iter().enumerate().take(3) {
            let e = &edges[ei];
            let path: Vec<String> = e.witness.iter().map(|s| s.to_string()).collect();
            msg.push_str(&format!(
                "; edge {} -> {} via {}",
                e.from,
                e.to,
                path.join(" -> ")
            ));
            if i == 2 && cy.edges.len() > 3 {
                msg.push_str(&format!("; ... {} more edges", cy.edges.len() - 3));
            }
        }
        findings.push(Finding {
            rule: "lock-cycle",
            path: anchor.path.clone(),
            line: anchor.line,
            col: 1,
            message: msg,
        });
    }
    let rank = |node: &str| DECLARED.iter().position(|(n, _)| *n == node);
    for e in &edges {
        let (Some(rf), Some(rt)) = (rank(&e.from), rank(&e.to)) else {
            continue;
        };
        if rf < rt {
            continue;
        }
        if e.from == e.to {
            continue; // self-loop: already a lock-cycle finding
        }
        let anchor = e.witness.last().expect("witness chains are non-empty");
        let path: Vec<String> = e.witness.iter().map(|s| s.to_string()).collect();
        findings.push(Finding {
            rule: "lock-order",
            path: anchor.path.clone(),
            line: anchor.line,
            col: 1,
            message: format!(
                "acquired {} while {} may be held; the declared order is {}; witness: {}",
                DECLARED[rt].1,
                DECLARED[rf].1,
                "BatchQueue::inner < ModelRegistry::models < Shared::metrics",
                path.join(" -> ")
            ),
        });
    }

    // Allow suppression, same contract as per-file rules: a justified
    // allow on the finding's line or the line above.
    let mut allows: BTreeMap<&str, Vec<(String, usize)>> = BTreeMap::new();
    for (path, src) in &sorted {
        let toks = lex(src);
        let idx = LineIndex::new(src);
        for a in parse_allows(src, &toks, &idx) {
            if a.justified {
                allows
                    .entry(path.as_str())
                    .or_default()
                    .push((a.rule, a.line));
            }
        }
    }
    findings.retain(|f| {
        !allows.get(f.path.as_str()).is_some_and(|list| {
            list.iter()
                .any(|(rule, line)| rule == f.rule && (*line == f.line || line + 1 == f.line))
        })
    });
    findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));

    Analysis {
        edges,
        cycles,
        findings,
    }
}

/// Enumerate elementary cycles by DFS back-edge extraction, deduplicated
/// by node set. Complete enough for a lock graph (tens of nodes); every
/// strongly-connected component with a cycle yields at least one witness.
fn find_cycles(edges: &[Edge]) -> Vec<Cycle> {
    let mut adj: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        adj.entry(e.from.as_str()).or_default().push(i);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();

    let mut cycles: Vec<Cycle> = Vec::new();
    let mut seen_sets: Vec<Vec<String>> = Vec::new();
    // 0 = white, 1 = on current path, 2 = done.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();

    fn dfs<'a>(
        node: &'a str,
        edges: &'a [Edge],
        adj: &BTreeMap<&'a str, Vec<usize>>,
        color: &mut BTreeMap<&'a str, u8>,
        path: &mut Vec<(&'a str, usize)>,
        cycles: &mut Vec<Cycle>,
        seen_sets: &mut Vec<Vec<String>>,
    ) {
        color.insert(node, 1);
        for &ei in adj.get(node).into_iter().flatten() {
            let to = edges[ei].to.as_str();
            match color.get(to).copied().unwrap_or(0) {
                1 => {
                    // Back edge: the cycle is the path suffix from `to`.
                    let start = path.iter().position(|(n, _)| *n == to).unwrap_or(0);
                    let mut locks: Vec<String> =
                        path[start..].iter().map(|(n, _)| n.to_string()).collect();
                    let mut es: Vec<usize> = path[start + 1..].iter().map(|(_, e)| *e).collect();
                    locks.push(to.to_string());
                    es.push(ei);
                    let mut key = locks.clone();
                    key.sort();
                    key.dedup();
                    if !seen_sets.contains(&key) {
                        seen_sets.push(key);
                        cycles.push(Cycle { locks, edges: es });
                    }
                }
                0 => {
                    path.push((to, ei));
                    dfs(to, edges, adj, color, path, cycles, seen_sets);
                    path.pop();
                }
                _ => {}
            }
        }
        color.insert(node, 2);
    }

    for &n in &nodes {
        if color.get(n).copied().unwrap_or(0) == 0 {
            let mut path = vec![(n, usize::MAX)];
            dfs(
                n,
                edges,
                &adj,
                &mut color,
                &mut path,
                &mut cycles,
                &mut seen_sets,
            );
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(list: &[(&str, &str)]) -> Vec<(String, Vec<u8>)> {
        list.iter()
            .map(|(p, s)| (p.to_string(), s.as_bytes().to_vec()))
            .collect()
    }

    #[test]
    fn cross_function_cycle_found_with_witness() {
        // No single function holds two guards in the wrong order, but
        // a() holds `alpha` across a call into b(), which locks `beta`,
        // while c() holds `beta` and calls d() which locks `alpha`.
        let fs = files(&[(
            "crates/t/src/lib.rs",
            "fn a(&self) { let g = self.alpha.lock(); self.b(); }\n\
             fn b(&self) { let h = self.beta.lock(); }\n\
             fn c(&self) { let h = self.beta.lock(); d(); }\n\
             fn d() { S.alpha.lock(); }\n",
        )]);
        let an = analyze_files(&fs);
        assert_eq!(an.cycles.len(), 1, "{:?}", an.cycles);
        let cy = &an.cycles[0];
        assert_eq!(cy.locks.first(), cy.locks.last());
        assert_eq!(cy.locks.len(), 3); // two distinct locks + repeat
        for (i, &ei) in cy.edges.iter().enumerate() {
            assert_eq!(an.edges[ei].from, cy.locks[i]);
            assert_eq!(an.edges[ei].to, cy.locks[i + 1]);
            assert!(!an.edges[ei].witness.is_empty());
        }
        assert!(an.findings.iter().any(|f| f.rule == "lock-cycle"));
        // The witness names the call chain, not just the endpoints.
        let f = an.findings.iter().find(|f| f.rule == "lock-cycle").unwrap();
        assert!(f.message.contains("crates/t/src/lib.rs:"), "{}", f.message);
    }

    #[test]
    fn self_loop_reacquisition_is_a_cycle() {
        let fs = files(&[(
            "crates/t/src/lib.rs",
            "fn f(&self) { let a = self.inner.lock(); let b = self.inner.lock(); }",
        )]);
        let an = analyze_files(&fs);
        assert!(
            an.findings.iter().any(|f| f.rule == "lock-cycle"),
            "{:?}",
            an.findings
        );
    }

    #[test]
    fn declared_order_inversion_is_lock_order_even_without_cycle() {
        let fs = files(&[(
            "crates/server/src/batch.rs",
            "fn f(&self) { let m = self.metrics.lock(); let q = self.inner.lock(); }",
        )]);
        let an = analyze_files(&fs);
        let rules: Vec<&str> = an.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"lock-order"), "{rules:?}");
    }

    #[test]
    fn declared_order_checked_across_calls() {
        // The inversion only exists through the call graph.
        let fs = files(&[(
            "crates/server/src/batch.rs",
            "fn outer(&self) { let m = self.metrics.lock(); self.helper(); }\n\
             fn helper(&self) { let q = self.inner.lock(); }\n",
        )]);
        let an = analyze_files(&fs);
        let f = an
            .findings
            .iter()
            .find(|f| f.rule == "lock-order")
            .expect("cross-call inversion must be found");
        assert!(f.message.contains("outer"), "{}", f.message);
        assert!(f.message.contains("helper"), "{}", f.message);
    }

    #[test]
    fn guard_release_breaks_the_edge() {
        let dropped = files(&[(
            "crates/server/src/batch.rs",
            "fn f(&self) { let m = self.metrics.lock(); drop(m); let q = self.inner.lock(); }",
        )]);
        assert!(analyze_files(&dropped).findings.is_empty());
        let scoped = files(&[(
            "crates/server/src/batch.rs",
            "fn f(&self) { { let m = self.metrics.lock(); } let q = self.inner.lock(); }",
        )]);
        assert!(analyze_files(&scoped).findings.is_empty());
        let stmt = files(&[(
            "crates/server/src/batch.rs",
            "fn f(&self) { self.metrics.lock().bump(); self.inner.lock().push(1); }",
        )]);
        assert!(analyze_files(&stmt).findings.is_empty());
        let ordered = files(&[(
            "crates/server/src/batch.rs",
            "fn f(&self) { let q = self.inner.lock(); let m = self.metrics.lock(); }",
        )]);
        assert!(analyze_files(&ordered).findings.is_empty());
    }

    #[test]
    fn crates_do_not_alias_same_named_locks_or_fns() {
        // `inner` in two crates are different nodes; a fn name in crate A
        // does not resolve calls made from crate B.
        let fs = files(&[
            (
                "crates/a/src/lib.rs",
                "fn f(&self) { let g = self.inner.lock(); helper(); }",
            ),
            (
                "crates/b/src/lib.rs",
                "fn helper() { S.inner.lock(); S.inner.lock(); }",
            ),
        ]);
        // b::helper self-deadlocks on a temporary? No: both are statement
        // temporaries released at `;` — no held set, no edge. And a::f's
        // call to `helper` must not resolve into crate b.
        let an = analyze_files(&fs);
        assert!(an.edges.is_empty(), "{:?}", an.edges);
    }

    #[test]
    fn justified_allow_suppresses_cycle_finding() {
        let fs = files(&[(
            "crates/t/src/lib.rs",
            "fn f(&self) {\n    let a = self.inner.lock();\n    \
             // xgs-lint: allow(lock-cycle): intentionally reentrant in this fixture\n    \
             let b = self.inner.lock();\n}",
        )]);
        let an = analyze_files(&fs);
        assert!(an.findings.is_empty(), "{:?}", an.findings);
        // The graph itself still records the edge — only reporting is
        // suppressed, so `--json` consumers can see audited edges.
        assert!(!an.edges.is_empty());
    }

    #[test]
    fn wait_joins_graph_without_holding() {
        // cv.wait while holding idle: edge idle -> cv, but wait holds
        // nothing, so a later lock sees only `idle` held.
        let fs = files(&[(
            "crates/t/src/lib.rs",
            "fn f(&self) { let g = self.idle.lock(); self.cv.wait(&mut g); }",
        )]);
        let an = analyze_files(&fs);
        assert_eq!(an.edges.len(), 1);
        assert_eq!(an.edges[0].from, "t::idle");
        assert_eq!(an.edges[0].to, "t::cv");
        assert!(an.cycles.is_empty());
    }
}

//! Pre-execution graph checking.
//!
//! Everything here is an *independent* implementation of invariants the
//! runtime also enforces dynamically: [`hazard_edges`] re-derives the
//! superscalar RAW/WAR/WAW edges from access lists, [`check_acyclic`]
//! catches the deadlock the post-run validator can never see (a cyclic
//! graph never completes, so there is no schedule to validate),
//! [`check_cholesky_census`] pins the DAG against the closed-form
//! per-kernel counts, and [`check_shard_plan`] proves frame-protocol
//! safety of a sharded factorization plan over the block-cyclic owner map
//! before any worker process is spawned.
//!
//! This crate deliberately depends on nothing: `xgs-runtime` and
//! `xgs-cholesky` depend on *it* and convert their graphs into the plain
//! types below, so agreement between this module and the runtime is a
//! real cross-check, not one implementation quoted twice.

use std::collections::HashMap;
use std::fmt;

/// One data access of a task: which datum, and whether it writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessSpec {
    pub data: u64,
    pub write: bool,
}

impl AccessSpec {
    pub fn read(data: u64) -> AccessSpec {
        AccessSpec { data, write: false }
    }
    pub fn write(data: u64) -> AccessSpec {
        AccessSpec { data, write: true }
    }
}

/// Dependency hazard classes, superscalar-style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HazardKind {
    Raw,
    War,
    Waw,
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HazardKind::Raw => "RAW",
            HazardKind::War => "WAR",
            HazardKind::Waw => "WAW",
        })
    }
}

/// A hazard edge: `pred` must fully precede `succ` because of `data`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    pub pred: usize,
    pub succ: usize,
    pub data: u64,
    pub kind: HazardKind,
}

/// Derive every hazard edge implied by per-task access lists, walking
/// tasks in submission order exactly like a superscalar issue window:
/// a read depends on the last writer (RAW); a write depends on the last
/// writer (WAW) and on every reader since (WAR), then becomes the last
/// writer and clears the reader set.
///
/// Each task is processed in two phases — every edge is derived against
/// the *pre-task* state before any of the task's own accesses update it —
/// matching the runtime validator's semantics, so the executor can demand
/// element-wise equality between the two independently derived lists.
pub fn hazard_edges(accesses: &[Vec<AccessSpec>]) -> Vec<Edge> {
    let mut last_writer: HashMap<u64, usize> = HashMap::new();
    let mut readers: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut edges = Vec::new();
    for (succ, list) in accesses.iter().enumerate() {
        for a in list {
            if a.write {
                if let Some(&w) = last_writer.get(&a.data) {
                    edges.push(Edge {
                        pred: w,
                        succ,
                        data: a.data,
                        kind: HazardKind::Waw,
                    });
                }
                for &r in readers.get(&a.data).map(Vec::as_slice).unwrap_or(&[]) {
                    if r != succ {
                        edges.push(Edge {
                            pred: r,
                            succ,
                            data: a.data,
                            kind: HazardKind::War,
                        });
                    }
                }
            } else if let Some(&w) = last_writer.get(&a.data) {
                if w != succ {
                    edges.push(Edge {
                        pred: w,
                        succ,
                        data: a.data,
                        kind: HazardKind::Raw,
                    });
                }
            }
        }
        for a in list {
            if a.write {
                last_writer.insert(a.data, succ);
                readers.insert(a.data, Vec::new());
            } else {
                readers.entry(a.data).or_default().push(succ);
            }
        }
    }
    edges
}

/// Why a graph fails the pre-execution check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The dependency graph contains this cycle (task ids, in order; the
    /// first id is repeated conceptually — the last task points back at
    /// the first).
    Cycle(Vec<usize>),
    /// A task names a successor outside the graph.
    BadSuccessor { task: usize, succ: usize, n: usize },
    /// Kernel census doesn't match the closed form for this tile count.
    Census {
        kind: &'static str,
        got: u64,
        want: u64,
        nt: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle(path) => {
                write!(f, "dependency cycle: ")?;
                for (i, t) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "task {t}")?;
                }
                if let Some(first) = path.first() {
                    write!(f, " -> task {first}")?;
                }
                Ok(())
            }
            GraphError::BadSuccessor { task, succ, n } => write!(
                f,
                "task {task} lists successor {succ}, but the graph has only {n} tasks"
            ),
            GraphError::Census {
                kind,
                got,
                want,
                nt,
            } => write!(
                f,
                "kernel census mismatch for nt={nt}: {got} {kind} tasks, closed form wants {want}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Check that the graph with `n` tasks and the given successor lists is
/// acyclic. On failure the error carries one concrete cycle, in order.
///
/// Iterative three-color DFS (no recursion: graphs reach hundreds of
/// thousands of tasks and a recursive walk would overflow the stack
/// before the cycle is ever reported).
pub fn check_acyclic<F, I>(n: usize, successors: F) -> Result<(), GraphError>
where
    F: Fn(usize) -> I,
    I: IntoIterator<Item = usize>,
{
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        // Stack of (node, successor list, resume index).
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let succs: Vec<usize> = successors(root).into_iter().collect();
        color[root] = GRAY;
        stack.push((root, succs, 0));
        loop {
            let (node, step) = match stack.last_mut() {
                None => break,
                Some((node, succs, next)) => {
                    let s = succs.get(*next).copied();
                    if s.is_some() {
                        *next += 1;
                    }
                    (*node, s)
                }
            };
            let Some(s) = step else {
                color[node] = BLACK;
                stack.pop();
                continue;
            };
            if s >= n {
                return Err(GraphError::BadSuccessor {
                    task: node,
                    succ: s,
                    n,
                });
            }
            match color[s] {
                WHITE => {
                    parent[s] = node;
                    color[s] = GRAY;
                    let nsuccs: Vec<usize> = successors(s).into_iter().collect();
                    stack.push((s, nsuccs, 0));
                }
                GRAY => {
                    // Found a back edge: walk parents from `node` back to
                    // `s` to report the cycle in order.
                    let mut path = vec![node];
                    let mut cur = node;
                    while cur != s {
                        cur = parent[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Err(GraphError::Cycle(path));
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Closed-form kernel counts of the right-looking tile Cholesky DAG on an
/// `nt × nt` tile grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelCensus {
    pub potrf: u64,
    pub trsm: u64,
    pub syrk: u64,
    pub gemm: u64,
}

impl KernelCensus {
    /// The closed form: `nt` POTRFs, `nt(nt-1)/2` TRSMs and SYRKs,
    /// `nt(nt-1)(nt-2)/6` GEMMs — total `nt + nt(nt-1)/2 + nt(nt²-1)/6`.
    pub fn expected(nt: usize) -> KernelCensus {
        let nt = nt as u64;
        KernelCensus {
            potrf: nt,
            trsm: nt * nt.saturating_sub(1) / 2,
            syrk: nt * nt.saturating_sub(1) / 2,
            gemm: nt * nt.saturating_sub(1) * nt.saturating_sub(2) / 6,
        }
    }

    pub fn total(&self) -> u64 {
        self.potrf + self.trsm + self.syrk + self.gemm
    }
}

/// Count kernel kinds (`"potrf"`, `"trsm"`, `"syrk"`, `"gemm"`) and
/// compare against [`KernelCensus::expected`] for `nt`.
pub fn check_cholesky_census<'a>(
    kinds: impl IntoIterator<Item = &'a str>,
    nt: usize,
) -> Result<KernelCensus, GraphError> {
    let mut got = KernelCensus {
        potrf: 0,
        trsm: 0,
        syrk: 0,
        gemm: 0,
    };
    let mut other = 0u64;
    for k in kinds {
        match k {
            "potrf" => got.potrf += 1,
            "trsm" => got.trsm += 1,
            "syrk" => got.syrk += 1,
            "gemm" => got.gemm += 1,
            _ => other += 1,
        }
    }
    let want = KernelCensus::expected(nt);
    for (kind, g, w) in [
        ("potrf", got.potrf, want.potrf),
        ("trsm", got.trsm, want.trsm),
        ("syrk", got.syrk, want.syrk),
        ("gemm", got.gemm, want.gemm),
        ("unknown-kind", other, 0),
    ] {
        if g != w {
            return Err(GraphError::Census {
                kind,
                got: g,
                want: w,
                nt,
            });
        }
    }
    Ok(got)
}

// ------------------------------------------------------------- shard plans

/// The block-cyclic owner map, restated here independently of
/// `xgs_runtime::distsim::block_cyclic_owner` so the plan checker
/// cross-checks the distribution instead of assuming it.
pub fn block_cyclic_owner(i: usize, j: usize, p: usize, q: usize) -> usize {
    (i % p) * q + (j % q)
}

/// One task of a sharded factorization plan.
#[derive(Clone, Debug)]
pub struct PlanTask {
    /// `"potrf" | "trsm" | "syrk" | "gemm"`.
    pub kind: &'static str,
    /// Worker that executes the task (must own the written tile).
    pub owner: usize,
    /// Tiles read (tile coordinates, row >= col).
    pub reads: Vec<(usize, usize)>,
    /// Tile written in place.
    pub write: (usize, usize),
    /// Whether the worker sends the written tile back (its value is final
    /// and other shards / the coordinator will need it).
    pub publish: bool,
    /// Wire bytes of the publish TILE frame (0 when `publish` is false).
    /// Computed by the caller from the tile's declared format — this crate
    /// stays dependency-free, so byte accounting is plain numbers here.
    pub publish_bytes: u64,
}

/// One coordinator-side event, in emission order. FIFO per-stream
/// ordering is what turns this sequence into a proof: a transfer emitted
/// before a task on the same worker's stream is processed first.
#[derive(Clone, Debug)]
pub enum PlanEvent {
    /// A TILE frame to `to`. `initial` transfers seed the distribution
    /// from the coordinator's storage (version 0); later transfers
    /// forward a published tile produced on its owning shard.
    Transfer {
        tile: (usize, usize),
        to: usize,
        initial: bool,
        /// Wire bytes of this TILE frame, caller-computed from the tile's
        /// declared precision and structure.
        bytes: u64,
    },
    /// Dispatch of `tasks[index]` to its owner.
    Task(usize),
}

/// A complete sharded plan: grid, tasks, and the event sequence the
/// coordinator will emit.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    pub nt: usize,
    pub p: usize,
    pub q: usize,
    pub workers: usize,
    pub tasks: Vec<PlanTask>,
    pub events: Vec<PlanEvent>,
}

/// Why a sharded plan is unsafe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// Grid shape doesn't tile the worker fleet.
    Grid { p: usize, q: usize, workers: usize },
    /// A task is placed on a worker that doesn't own its written tile.
    WrongOwner {
        task: usize,
        kind: &'static str,
        tile: (usize, usize),
        placed: usize,
        owner: usize,
    },
    /// A task reads a tile its shard never received (or received stale):
    /// the frame protocol would deadlock or compute garbage.
    MissingOperand {
        task: usize,
        kind: &'static str,
        tile: (usize, usize),
        worker: usize,
        have: Option<u64>,
        want: u64,
    },
    /// A published tile is forwarded before its producing task ran.
    ForwardBeforeProduce { tile: (usize, usize), to: usize },
    /// A tile is forwarded to the shard that already owns it.
    SendToSelf { tile: (usize, usize), owner: usize },
    /// The same tile version is transferred twice to one worker.
    DuplicateTransfer {
        tile: (usize, usize),
        to: usize,
        version: u64,
    },
    /// An initial transfer is mis-routed off the owner map.
    MisroutedSeed {
        tile: (usize, usize),
        to: usize,
        owner: usize,
    },
    /// Per-kernel census over the plan doesn't match the closed form.
    Census(GraphError),
    /// Event references a task id outside `tasks`.
    BadEvent { index: usize },
    /// A recovery replay seeds a tile wrongly (ownership, finality, dup).
    RecoveryBadSeed {
        tile: (usize, usize),
        why: &'static str,
    },
    /// A recovery replay forwards a tile it must not.
    RecoveryBadForward {
        tile: (usize, usize),
        why: &'static str,
    },
    /// A recovery replay re-dispatches a task it must not.
    RecoveryBadReplay { task: usize, why: &'static str },
    /// A replayed task would read an operand at the wrong version.
    RecoveryStaleOperand {
        task: usize,
        tile: (usize, usize),
        have: Option<u64>,
        want: u64,
    },
    /// The replay ends short of the lost shard's dispatched state.
    RecoveryIncomplete { why: String },
    /// The recovery plan's completed/dispatched bookkeeping contradicts
    /// itself (or the base plan).
    RecoveryInconsistent { why: String },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Grid { p, q, workers } => {
                write!(f, "grid {p}x{q} does not tile {workers} workers")
            }
            PlanError::WrongOwner {
                task,
                kind,
                tile,
                placed,
                owner,
            } => write!(
                f,
                "task {task} ({kind} on tile ({},{})) placed on worker {placed}, but the \
                 block-cyclic map owns it to worker {owner}",
                tile.0, tile.1
            ),
            PlanError::MissingOperand {
                task,
                kind,
                tile,
                worker,
                have,
                want,
            } => write!(
                f,
                "task {task} ({kind}) on worker {worker} reads tile ({},{}) at version {want}, \
                 but the plan delivers {} — no matching TILE transfer precedes the task",
                tile.0,
                tile.1,
                match have {
                    Some(v) => format!("version {v}"),
                    None => "nothing".to_string(),
                }
            ),
            PlanError::ForwardBeforeProduce { tile, to } => write!(
                f,
                "tile ({},{}) forwarded to worker {to} before its producing task published it",
                tile.0, tile.1
            ),
            PlanError::SendToSelf { tile, owner } => write!(
                f,
                "tile ({},{}) forwarded to worker {owner}, which already owns it",
                tile.0, tile.1
            ),
            PlanError::DuplicateTransfer { tile, to, version } => write!(
                f,
                "tile ({},{}) version {version} transferred to worker {to} twice",
                tile.0, tile.1
            ),
            PlanError::MisroutedSeed { tile, to, owner } => write!(
                f,
                "initial transfer routes tile ({},{}) to worker {to}; owner map says {owner}",
                tile.0, tile.1
            ),
            PlanError::Census(e) => write!(f, "{e}"),
            PlanError::BadEvent { index } => {
                write!(f, "plan event references task {index} out of range")
            }
            PlanError::RecoveryBadSeed { tile, why } => {
                write!(f, "recovery seed of tile ({},{}): {why}", tile.0, tile.1)
            }
            PlanError::RecoveryBadForward { tile, why } => {
                write!(f, "recovery forward of tile ({},{}): {why}", tile.0, tile.1)
            }
            PlanError::RecoveryBadReplay { task, why } => {
                write!(f, "recovery replay of task {task}: {why}")
            }
            PlanError::RecoveryStaleOperand {
                task,
                tile,
                have,
                want,
            } => write!(
                f,
                "replayed task {task} reads tile ({},{}) at version {want}, replay delivers {}",
                tile.0,
                tile.1,
                match have {
                    Some(v) => format!("version {v}"),
                    None => "nothing".to_string(),
                }
            ),
            PlanError::RecoveryIncomplete { why } => write!(f, "recovery incomplete: {why}"),
            PlanError::RecoveryInconsistent { why } => {
                write!(f, "recovery bookkeeping inconsistent: {why}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// What a verified plan looks like, for logging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanSummary {
    pub tasks: u64,
    pub transfers: u64,
    pub forwards: u64,
    /// TILE frames the plan moves: seeds + forwards + publishes.
    pub tile_frames: u64,
    /// Total wire bytes of those TILE frames, from the caller-supplied
    /// per-event byte counts. The coordinator asserts its measured TILE
    /// census equals this when tile formats are static (dense storage).
    pub tile_bytes: u64,
    /// Tasks per worker under the owner map.
    pub per_worker: Vec<u64>,
}

/// Statically verify a sharded plan: owner placement, seed routing, and —
/// by replaying the event sequence with tile versions — that every task's
/// read sees the *current* version of each operand on its shard, that no
/// tile is forwarded before its producer published it, that nothing is
/// sent to its own shard, and that the per-kernel census matches the
/// closed form for `nt`.
pub fn check_shard_plan(plan: &ShardPlan) -> Result<PlanSummary, PlanError> {
    let (p, q, workers) = (plan.p, plan.q, plan.workers);
    if p == 0 || q == 0 || p * q != workers {
        return Err(PlanError::Grid { p, q, workers });
    }
    // Independent owner check for every task.
    for (t, task) in plan.tasks.iter().enumerate() {
        let owner = block_cyclic_owner(task.write.0, task.write.1, p, q);
        if task.owner != owner {
            return Err(PlanError::WrongOwner {
                task: t,
                kind: task.kind,
                tile: task.write,
                placed: task.owner,
                owner,
            });
        }
    }
    // Census against the closed form.
    check_cholesky_census(plan.tasks.iter().map(|t| t.kind), plan.nt).map_err(PlanError::Census)?;

    // Replay: per-worker tile versions, global current version, and the
    // set of published (coordinator-held) versions.
    let mut version: HashMap<(usize, usize), u64> = HashMap::new();
    let mut held: Vec<HashMap<(usize, usize), u64>> = vec![HashMap::new(); workers];
    let mut published: HashMap<(usize, usize), u64> = HashMap::new();
    let mut transfers = 0u64;
    let mut forwards = 0u64;
    let mut tile_frames = 0u64;
    let mut tile_bytes = 0u64;
    let mut per_worker = vec![0u64; workers];
    for ev in &plan.events {
        match ev {
            PlanEvent::Transfer {
                tile,
                to,
                initial,
                bytes,
            } => {
                let cur = version.get(tile).copied().unwrap_or(0);
                let owner = block_cyclic_owner(tile.0, tile.1, p, q);
                if *initial {
                    if *to != owner {
                        return Err(PlanError::MisroutedSeed {
                            tile: *tile,
                            to: *to,
                            owner,
                        });
                    }
                } else {
                    if published.get(tile) != Some(&cur) || cur == 0 {
                        return Err(PlanError::ForwardBeforeProduce {
                            tile: *tile,
                            to: *to,
                        });
                    }
                    if *to == owner {
                        return Err(PlanError::SendToSelf { tile: *tile, owner });
                    }
                    forwards += 1;
                }
                let slot = held.get_mut(*to).ok_or(PlanError::Grid { p, q, workers })?;
                if slot.insert(*tile, cur) == Some(cur) {
                    return Err(PlanError::DuplicateTransfer {
                        tile: *tile,
                        to: *to,
                        version: cur,
                    });
                }
                transfers += 1;
                tile_frames += 1;
                tile_bytes += bytes;
            }
            PlanEvent::Task(t) => {
                let task = plan
                    .tasks
                    .get(*t)
                    .ok_or(PlanError::BadEvent { index: *t })?;
                for need in task.reads.iter().chain(std::iter::once(&task.write)) {
                    let want = version.get(need).copied().unwrap_or(0);
                    let have = held[task.owner].get(need).copied();
                    if have != Some(want) {
                        return Err(PlanError::MissingOperand {
                            task: *t,
                            kind: task.kind,
                            tile: *need,
                            worker: task.owner,
                            have,
                            want,
                        });
                    }
                }
                let v = version.entry(task.write).or_insert(0);
                *v += 1;
                held[task.owner].insert(task.write, *v);
                if task.publish {
                    published.insert(task.write, *v);
                    tile_frames += 1;
                    tile_bytes += task.publish_bytes;
                }
                per_worker[task.owner] += 1;
            }
        }
    }
    Ok(PlanSummary {
        tasks: plan.tasks.len() as u64,
        transfers,
        forwards,
        tile_frames,
        tile_bytes,
        per_worker,
    })
}

// --------------------------------------------------------- recovery plans

/// One frame of a worker-replacement replay, in the order the coordinator
/// will emit them onto the replacement's FIFO stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// Seed a tile the lost shard owned from the coordinator's *original*
    /// storage — its final value was not yet published, so the replayed
    /// writers rebuild it from scratch.
    SeedOriginal { tile: (usize, usize) },
    /// Seed an owned tile from its *published* (final) bytes: its last
    /// writer completed before the death, so nothing needs re-running.
    SeedPublished { tile: (usize, usize) },
    /// Re-forward a published tile another shard produced (an operand the
    /// lost shard had received).
    Forward { tile: (usize, usize) },
    /// Re-dispatch base-plan task `task` to the replacement.
    Replay { task: usize },
}

/// A replacement replay to be validated against the [`ShardPlan`] it
/// recovers: which worker died, which tasks had completed (`DONE`
/// processed) and which had been dispatched, and the frame sequence the
/// coordinator intends to send.
#[derive(Clone, Debug)]
pub struct RecoveryPlan {
    /// Grid slot of the dead worker.
    pub lost: usize,
    /// Per base-plan task: completion at the moment of death.
    pub completed: Vec<bool>,
    /// Per base-plan task: dispatched (sent) at the moment of death.
    pub dispatched: Vec<bool>,
    pub events: Vec<RecoveryEvent>,
}

/// What a verified recovery replay looks like, for logging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoverySummary {
    pub seeds: u64,
    /// Of those, seeds shipped from published (final) bytes — work the
    /// replay did *not* redo.
    pub published_seeds: u64,
    pub forwards: u64,
    pub replays: u64,
}

/// Statically verify a worker-replacement replay against its base plan.
///
/// The contract: after the replacement processes the event sequence, its
/// shard state must be *bitwise* the state the lost worker would have had
/// after processing every frame it had been sent — because workers are
/// deterministic functions of their FIFO input. Concretely:
///
/// * seeds cover exactly the lost shard's owned tiles, from published
///   bytes iff the tile's final writer completed;
/// * forwards re-deliver only published-final tiles the shard doesn't own;
/// * every replayed task was dispatched, is owned by the lost worker,
///   writes a not-yet-final tile, and — replayed in original dispatch
///   order — sees each operand at exactly the version the original
///   execution saw (completed predecessors count, replayed ones rebuild);
/// * every dispatched task of the lost worker whose written tile is not
///   final is replayed (otherwise the run would hang or finish wrong),
///   and every owned tile ends at the version the dispatched prefix
///   produces.
pub fn check_recovery_plan(
    base: &ShardPlan,
    rec: &RecoveryPlan,
) -> Result<RecoverySummary, PlanError> {
    let (p, q, workers) = (base.p, base.q, base.workers);
    let n = base.tasks.len();
    if rec.lost >= workers {
        return Err(PlanError::Grid { p, q, workers });
    }
    if rec.completed.len() != n || rec.dispatched.len() != n {
        return Err(PlanError::RecoveryInconsistent {
            why: format!(
                "completed/dispatched vectors ({}/{}) do not match {n} plan tasks",
                rec.completed.len(),
                rec.dispatched.len()
            ),
        });
    }
    for (t, (&c, &d)) in rec.completed.iter().zip(rec.dispatched.iter()).enumerate() {
        if c && !d {
            return Err(PlanError::RecoveryInconsistent {
                why: format!("task {t} completed but never dispatched"),
            });
        }
    }

    // Writers of each tile in id order. Completed writers must form a
    // prefix (same-worker FIFO guarantees it in any real trace); the
    // death-time version of a tile is that prefix's length.
    let mut writers: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (t, task) in base.tasks.iter().enumerate() {
        writers.entry(task.write).or_default().push(t);
    }
    let mut death_version: HashMap<(usize, usize), u64> = HashMap::new();
    let mut final_tiles: HashMap<(usize, usize), bool> = HashMap::new();
    for (tile, ws) in &writers {
        let done = ws.iter().take_while(|&&w| rec.completed[w]).count();
        if ws.iter().skip(done).any(|&w| rec.completed[w]) {
            return Err(PlanError::RecoveryInconsistent {
                why: format!(
                    "completed writers of tile ({},{}) are not a prefix of its write order",
                    tile.0, tile.1
                ),
            });
        }
        death_version.insert(*tile, done as u64);
        let last = *ws.last().unwrap_or(&0);
        final_tiles.insert(
            *tile,
            done == ws.len() && base.tasks[last].publish && rec.completed[last],
        );
    }
    let is_final = |tile: &(usize, usize)| final_tiles.get(tile).copied().unwrap_or(false);
    // Version task `t`'s original execution saw for tile `r`: the number
    // of `r`-writers dispatched before it.
    let seen_version = |r: &(usize, usize), t: usize| -> u64 {
        writers
            .get(r)
            .map_or(0, |ws| ws.iter().take_while(|&&w| w < t).count() as u64)
    };

    let mut local: HashMap<(usize, usize), u64> = HashMap::new();
    let mut last_replay: Option<usize> = None;
    let mut summary = RecoverySummary {
        seeds: 0,
        published_seeds: 0,
        forwards: 0,
        replays: 0,
    };
    let mut replayed = vec![false; n];
    for ev in &rec.events {
        match *ev {
            RecoveryEvent::SeedOriginal { tile } | RecoveryEvent::SeedPublished { tile } => {
                let published = matches!(ev, RecoveryEvent::SeedPublished { .. });
                if block_cyclic_owner(tile.0, tile.1, p, q) != rec.lost {
                    return Err(PlanError::RecoveryBadSeed {
                        tile,
                        why: "seeds a tile the lost worker does not own",
                    });
                }
                if published != is_final(&tile) {
                    return Err(PlanError::RecoveryBadSeed {
                        tile,
                        why: if published {
                            "published-bytes seed of a tile whose final writer has not completed"
                        } else {
                            "original-bytes seed of an already-final tile (its writers must \
                             not re-run)"
                        },
                    });
                }
                let v = if published {
                    death_version.get(&tile).copied().unwrap_or(0)
                } else {
                    0
                };
                if local.insert(tile, v).is_some() {
                    return Err(PlanError::RecoveryBadSeed {
                        tile,
                        why: "tile seeded twice",
                    });
                }
                summary.seeds += 1;
                summary.published_seeds += published as u64;
            }
            RecoveryEvent::Forward { tile } => {
                if block_cyclic_owner(tile.0, tile.1, p, q) == rec.lost {
                    return Err(PlanError::RecoveryBadForward {
                        tile,
                        why: "forwards a tile the lost worker owns (must be seeded instead)",
                    });
                }
                if !is_final(&tile) {
                    return Err(PlanError::RecoveryBadForward {
                        tile,
                        why: "forwards a tile that is not published-final",
                    });
                }
                local.insert(tile, death_version.get(&tile).copied().unwrap_or(0));
                summary.forwards += 1;
            }
            RecoveryEvent::Replay { task } => {
                let Some(meta) = base.tasks.get(task) else {
                    return Err(PlanError::BadEvent { index: task });
                };
                if meta.owner != rec.lost {
                    return Err(PlanError::RecoveryBadReplay {
                        task,
                        why: "replays a task the lost worker does not own",
                    });
                }
                if !rec.dispatched[task] {
                    return Err(PlanError::RecoveryBadReplay {
                        task,
                        why: "replays a task that was never dispatched",
                    });
                }
                if is_final(&meta.write) {
                    return Err(PlanError::RecoveryBadReplay {
                        task,
                        why: "re-runs a writer of an already-final tile (would double-apply)",
                    });
                }
                if last_replay.is_some_and(|prev| prev >= task) {
                    return Err(PlanError::RecoveryBadReplay {
                        task,
                        why: "replays out of original dispatch order",
                    });
                }
                last_replay = Some(task);
                for need in meta.reads.iter().chain(std::iter::once(&meta.write)) {
                    let want = seen_version(need, task);
                    let have = local.get(need).copied();
                    if have != Some(want) {
                        return Err(PlanError::RecoveryStaleOperand {
                            task,
                            tile: *need,
                            have,
                            want,
                        });
                    }
                }
                *local.entry(meta.write).or_insert(0) += 1;
                replayed[task] = true;
                summary.replays += 1;
            }
        }
    }

    // Completeness: every dispatched lost-worker task writing a non-final
    // tile is replayed, and every owned tile ends at its dispatched-prefix
    // version.
    for (t, task) in base.tasks.iter().enumerate() {
        if task.owner == rec.lost && rec.dispatched[t] && !is_final(&task.write) && !replayed[t] {
            return Err(PlanError::RecoveryIncomplete {
                why: format!(
                    "dispatched task {t} writes non-final tile ({},{}) but is not replayed",
                    task.write.0, task.write.1
                ),
            });
        }
    }
    for (tile, ws) in &writers {
        if block_cyclic_owner(tile.0, tile.1, p, q) != rec.lost {
            continue;
        }
        let want = ws.iter().take_while(|&&w| rec.dispatched[w]).count() as u64;
        let have = local.get(tile).copied();
        if have != Some(want) {
            return Err(PlanError::RecoveryIncomplete {
                why: format!(
                    "owned tile ({},{}) ends at version {have:?}, dispatched prefix needs {want}",
                    tile.0, tile.1
                ),
            });
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hazard_edges_textbook() {
        // t0 writes A; t1 reads A writes B; t2 reads A,B.
        let acc = vec![
            vec![AccessSpec::write(0)],
            vec![AccessSpec::read(0), AccessSpec::write(1)],
            vec![AccessSpec::read(0), AccessSpec::read(1)],
        ];
        let edges = hazard_edges(&acc);
        assert!(edges.contains(&Edge {
            pred: 0,
            succ: 1,
            data: 0,
            kind: HazardKind::Raw
        }));
        assert!(edges.contains(&Edge {
            pred: 1,
            succ: 2,
            data: 1,
            kind: HazardKind::Raw
        }));
        // t3 rewrites A: WAW on t0, WAR on t1 and t2.
        let mut acc = acc;
        acc.push(vec![AccessSpec::write(0)]);
        let edges = hazard_edges(&acc);
        assert!(edges.contains(&Edge {
            pred: 0,
            succ: 3,
            data: 0,
            kind: HazardKind::Waw
        }));
        assert!(edges.contains(&Edge {
            pred: 1,
            succ: 3,
            data: 0,
            kind: HazardKind::War
        }));
        assert!(edges.contains(&Edge {
            pred: 2,
            succ: 3,
            data: 0,
            kind: HazardKind::War
        }));
    }

    #[test]
    fn acyclic_accepts_chain_rejects_cycle() {
        let chain: [Vec<usize>; 3] = [vec![1], vec![2], vec![]];
        assert!(check_acyclic(3, |t| chain[t].clone()).is_ok());
        let cyc = [vec![1], vec![2], vec![0]];
        match check_acyclic(3, |t| cyc[t].clone()) {
            Err(GraphError::Cycle(path)) => assert_eq!(path, vec![0, 1, 2]),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn census_closed_form() {
        let want = KernelCensus::expected(5);
        assert_eq!(
            (want.potrf, want.trsm, want.syrk, want.gemm),
            (5, 10, 10, 10)
        );
        assert_eq!(want.total(), 35); // nt + nt(nt-1)/2 + nt(nt^2-1)/6
        let mut kinds: Vec<&str> = Vec::new();
        for (k, count) in [("potrf", 5), ("trsm", 10), ("syrk", 10), ("gemm", 10)] {
            kinds.extend(vec![k; count]);
        }
        assert!(check_cholesky_census(kinds.iter().copied(), 5).is_ok());
        let short: Vec<&str> = kinds[1..].to_vec();
        assert!(matches!(
            check_cholesky_census(short.iter().copied(), 5),
            Err(GraphError::Census { kind: "potrf", .. })
        ));
    }

    #[test]
    fn plan_summary_accumulates_tile_bytes() {
        // Smallest real plan: nt = 1, one worker, one POTRF. One seed in,
        // one publish out; the summary must add both frames and byte counts.
        let plan = ShardPlan {
            nt: 1,
            p: 1,
            q: 1,
            workers: 1,
            tasks: vec![PlanTask {
                kind: "potrf",
                owner: 0,
                reads: Vec::new(),
                write: (0, 0),
                publish: true,
                publish_bytes: 77,
            }],
            events: vec![
                PlanEvent::Transfer {
                    tile: (0, 0),
                    to: 0,
                    initial: true,
                    bytes: 123,
                },
                PlanEvent::Task(0),
            ],
        };
        let s = check_shard_plan(&plan).unwrap();
        assert_eq!(s.tile_frames, 2);
        assert_eq!(s.tile_bytes, 200);
        assert_eq!(s.transfers, 1);
        assert_eq!(s.forwards, 0);
    }
}

//! In-tree static analysis for the workspace.
//!
//! Two layers, both wired into CI as hard gates:
//!
//! * **`xgs-lint`** ([`lexer`] + [`rules`] + [`lockgraph`], driven by the
//!   `xgs-lint` binary): a hand-rolled Rust lexer and a token-stream rule
//!   engine that enforce the project's written invariants — NaN-safe float
//!   comparisons, panic-free network paths, bounded stream reads,
//!   justified and SAFETY-commented `unsafe` confined to audited modules,
//!   checked raw-syscall results, exhaustive wire-kind dispatch — as
//!   named, individually-suppressible rules, plus a whole-workspace
//!   lock-acquisition graph whose cycles (and inversions of the declared
//!   server order) are findings with full witness paths.
//! * **Pre-execution DAG checking** ([`dag`]): independent
//!   re-derivations of the runtime's correctness invariants (hazard
//!   edges, acyclicity, the Cholesky kernel census, and sharded-plan
//!   frame-protocol safety) that run *before* a graph executes, so a
//!   cyclic graph or an unsatisfiable tile transfer is a diagnostic at
//!   submission time rather than a hang at 3 a.m.
//!
//! The crate has zero dependencies on purpose: `xgs-runtime` and
//! `xgs-cholesky` depend on it, which keeps the checks an independent
//! implementation (a genuine cross-check) and lets the lint build even
//! when the rest of the workspace doesn't.

pub mod dag;
pub mod lexer;
pub mod lockgraph;
pub mod rules;

pub use dag::{
    block_cyclic_owner, check_acyclic, check_cholesky_census, check_recovery_plan,
    check_shard_plan, hazard_edges, AccessSpec, Edge, GraphError, HazardKind, KernelCensus,
    PlanError, PlanEvent, PlanSummary, PlanTask, RecoveryEvent, RecoveryPlan, RecoverySummary,
    ShardPlan,
};
pub use lockgraph::{analyze_files, Analysis, Cycle, Site};
pub use rules::{lint_file, lint_source, report_json, report_sarif, FileLint, Finding, RULES};

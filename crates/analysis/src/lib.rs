//! In-tree static analysis for the workspace.
//!
//! Two layers, both wired into CI as hard gates:
//!
//! * **`xgs-lint`** ([`lexer`] + [`rules`], driven by the `xgs-lint`
//!   binary): a hand-rolled Rust lexer and a token-stream rule engine
//!   that enforce the project's written invariants — NaN-safe float
//!   comparisons, panic-free network paths, bounded stream reads,
//!   justified `unsafe`, exhaustive wire-kind dispatch, and the server
//!   lock order — as named, individually-suppressible rules.
//! * **Pre-execution DAG checking** ([`dag`]): independent
//!   re-derivations of the runtime's correctness invariants (hazard
//!   edges, acyclicity, the Cholesky kernel census, and sharded-plan
//!   frame-protocol safety) that run *before* a graph executes, so a
//!   cyclic graph or an unsatisfiable tile transfer is a diagnostic at
//!   submission time rather than a hang at 3 a.m.
//!
//! The crate has zero dependencies on purpose: `xgs-runtime` and
//! `xgs-cholesky` depend on it, which keeps the checks an independent
//! implementation (a genuine cross-check) and lets the lint build even
//! when the rest of the workspace doesn't.

pub mod dag;
pub mod lexer;
pub mod rules;

pub use dag::{
    block_cyclic_owner, check_acyclic, check_cholesky_census, check_recovery_plan,
    check_shard_plan, hazard_edges, AccessSpec, Edge, GraphError, HazardKind, KernelCensus,
    PlanError, PlanEvent, PlanSummary, PlanTask, RecoveryEvent, RecoveryPlan, RecoverySummary,
    ShardPlan,
};
pub use rules::{lint_file, lint_source, report_json, FileLint, Finding, RULES};

//! The `xgs-lint` rule engine.
//!
//! Rules operate on the token stream from [`crate::lexer`] — never on raw
//! substring matches — so rule names inside string literals or comments
//! can neither trigger nor suppress a rule. Every rule is named and
//! individually suppressible with a justified allow comment:
//!
//! ```text
//! // xgs-lint: allow(rule-name): why this site is safe
//! ```
//!
//! The justification text after the closing paren is **mandatory**; an
//! allow without one is itself a finding (`unjustified-allow`). An allow
//! suppresses findings on its own line and on the line directly below it
//! (so both trailing and line-above comment styles work).
//!
//! Path-scoped rules receive the workspace-relative path with `/`
//! separators; the scoping predicates live next to each rule below.

use crate::lexer::{lex, LineIndex, Token, TokenKind};

/// Name + one-line summary for every rule, in reporting order.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-partial-cmp-sort",
        "float comparisons go through total_cmp, never .partial_cmp() (NaN-safe total order)",
    ),
    (
        "no-panic-in-network-path",
        "no unwrap/expect/panic!/wire-buffer indexing in server request handling or shard frame code",
    ),
    (
        "bounded-read-only",
        "no read_line/read_to_end/read_to_string on network streams; use the bounded fill_buf reader",
    ),
    (
        "no-unjustified-unsafe",
        "every unsafe block carries a justified allow",
    ),
    (
        "frame-kind-exhaustive",
        "matches on wire frame/op kinds bind unknown values explicitly instead of `_ =>`",
    ),
    (
        "lock-order",
        "the workspace lock graph respects the declared server order: BatchQueue::inner < ModelRegistry::models < Shared::metrics",
    ),
    (
        "lock-cycle",
        "the workspace lock-acquisition graph is acyclic; a may-deadlock cycle is reported with its full witness path",
    ),
    (
        "safety-comment-required",
        "every unsafe site carries a SAFETY comment on the preceding lines saying why it is sound",
    ),
    (
        "no-unsafe-outside-audited-modules",
        "unsafe is confined to the audited allowlist: vendor/rayon, vendor/polling, crates/kernels/src/gemm.rs",
    ),
    (
        "syscall-ret-checked",
        "in vendor/polling every raw syscall result must flow into an error check before reuse",
    ),
    (
        "no-unbounded-channel-send",
        "no unbounded mpsc channel() in shard coordinator/reader paths; bound the queue or justify the allow",
    ),
    (
        "no-heartbeat-in-hot-loop",
        "liveness HEARTBEAT frames are never emitted from a loop that also emits per-task TASK frames",
    ),
    (
        "no-raw-parallelism-probe",
        "machine-size probes go through xgs_runtime::logical_cores(), never raw available_parallelism()/num_cpus::get()",
    ),
    (
        "unjustified-allow",
        "an `xgs-lint: allow(...)` comment without justification text",
    ),
];

/// One lint finding, pointing at a byte offset resolved to line/column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A parsed `xgs-lint: allow(rule)` comment.
pub(crate) struct Allow {
    pub(crate) rule: String,
    pub(crate) line: usize,
    pub(crate) justified: bool,
}

/// A significant (non-whitespace, non-comment) token with its text.
/// Shared with the workspace lock-graph pass in [`crate::lockgraph`].
#[derive(Clone, Copy)]
pub(crate) struct Sig<'a> {
    pub(crate) kind: TokenKind,
    pub(crate) text: &'a [u8],
    pub(crate) start: usize,
}

impl<'a> Sig<'a> {
    pub(crate) fn is_punct(&self, b: u8) -> bool {
        self.kind == TokenKind::Punct(b)
    }
    pub(crate) fn is_ident(&self, name: &[u8]) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// Build the significant-token view shared by the per-file rules and the
/// workspace lock-graph pass: whitespace and comments stripped, import
/// aliases resolved so renames cannot hide a pattern.
pub(crate) fn sig_tokens<'a>(src: &'a [u8], toks: &[Token]) -> Vec<Sig<'a>> {
    let mut sig: Vec<Sig<'a>> = toks
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|t| Sig {
            kind: t.kind,
            text: t.text(src),
            start: t.start,
        })
        .collect();
    resolve_use_aliases(&mut sig);
    sig
}

/// [`lint_file`] result: findings plus the justified-allow census (the
/// binary reports both; an allow is spent scrutiny and worth surfacing).
pub struct FileLint {
    pub findings: Vec<Finding>,
    pub justified_allows: usize,
}

/// Lint one source file, returning only the findings.
pub fn lint_source(path: &str, src: &[u8]) -> Vec<Finding> {
    lint_file(path, src).findings
}

/// Lint one source file. `path` must be workspace-relative with `/`
/// separators — the path-scoped rules key off it.
pub fn lint_file(path: &str, src: &[u8]) -> FileLint {
    let toks = lex(src);
    let idx = LineIndex::new(src);
    let sig = sig_tokens(src, &toks);
    let allows = parse_allows(src, &toks, &idx);
    let tests = test_regions(&sig);
    let in_test = |off: usize| tests.iter().any(|&(s, e)| off >= s && off < e);

    let mut raw = Vec::new();
    rule_partial_cmp(path, &sig, &mut raw);
    if network_scoped(path) {
        rule_no_panic(path, &sig, &in_test, &mut raw);
        rule_bounded_read(path, &sig, &in_test, &mut raw);
        rule_unbounded_channel(path, &sig, &in_test, &mut raw);
    }
    rule_unsafe(path, &sig, &mut raw);
    rule_safety_comment(path, src, &toks, &sig, &mut raw);
    rule_unsafe_audited(path, &sig, &mut raw);
    if syscall_scoped(path) {
        rule_syscall_ret(path, &sig, &mut raw);
    }
    if frame_scoped(path) {
        rule_frame_exhaustive(path, &sig, &in_test, &mut raw);
        rule_heartbeat_hot_loop(path, &sig, &in_test, &mut raw);
    }
    rule_raw_parallelism_probe(path, &sig, &mut raw);

    // Nested matches can surface one site twice (outer and inner scan).
    raw.sort_by_key(|(off, rule, _)| (*off, *rule));
    raw.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

    let mut findings = Vec::new();
    for (off, rule, message) in raw {
        let (line, col) = idx.locate(off);
        let suppressed = allows
            .iter()
            .any(|a| a.justified && a.rule == rule && (a.line == line || a.line + 1 == line));
        if !suppressed {
            findings.push(Finding {
                rule,
                path: path.to_string(),
                line,
                col,
                message,
            });
        }
    }
    for a in &allows {
        if !RULES.iter().any(|(name, _)| *name == a.rule) {
            findings.push(Finding {
                rule: "unjustified-allow",
                path: path.to_string(),
                line: a.line,
                col: 1,
                message: format!("allow({}) names a rule that does not exist", a.rule),
            });
        } else if !a.justified {
            findings.push(Finding {
                rule: "unjustified-allow",
                path: path.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "allow({}) carries no justification; write `// xgs-lint: allow({}): <why>`",
                    a.rule, a.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.col));
    FileLint {
        findings,
        justified_allows: allows
            .iter()
            .filter(|a| a.justified && RULES.iter().any(|(name, _)| *name == a.rule))
            .count(),
    }
}

/// The machine-readable report, in the workspace's hand-rolled JSON
/// schema (see README "Static analysis"): scanned-file count, justified
/// allow count, the rule table, a per-rule finding histogram (rules with
/// zero findings are omitted, in [`RULES`] order), and one object per
/// finding.
pub fn report_json(files: usize, justified_allows: usize, findings: &[Finding]) -> String {
    let mut s = String::with_capacity(256 + findings.len() * 96);
    s.push_str("{\"files\":");
    s.push_str(&files.to_string());
    s.push_str(",\"allows\":");
    s.push_str(&justified_allows.to_string());
    s.push_str(",\"rules\":[");
    for (i, (name, _)) in RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(name);
        s.push('"');
    }
    s.push_str("],\"histogram\":{");
    let mut first = true;
    for (name, _) in RULES {
        let n = findings.iter().filter(|f| f.rule == *name).count();
        if n == 0 {
            continue;
        }
        if !first {
            s.push(',');
        }
        first = false;
        s.push('"');
        s.push_str(name);
        s.push_str("\":");
        s.push_str(&n.to_string());
    }
    s.push_str("},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"rule\":\"");
        s.push_str(f.rule);
        s.push_str("\",\"path\":");
        json_string(&f.path, &mut s);
        s.push_str(",\"line\":");
        s.push_str(&f.line.to_string());
        s.push_str(",\"col\":");
        s.push_str(&f.col.to_string());
        s.push_str(",\"message\":");
        json_string(&f.message, &mut s);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Minimal SARIF 2.1.0 report: one run, one `xgs-lint` driver with every
/// rule in [`RULES`], one result per finding. Enough for the standard
/// ingestion paths (code-scanning uploads, SARIF viewers) without pulling
/// a serializer into the zero-dependency crate.
pub fn report_sarif(findings: &[Finding]) -> String {
    let mut s = String::with_capacity(1024 + findings.len() * 192);
    s.push_str(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"xgs-lint\",\"rules\":[",
    );
    for (i, (name, summary)) in RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"id\":\"");
        s.push_str(name);
        s.push_str("\",\"shortDescription\":{\"text\":");
        json_string(summary, &mut s);
        s.push_str("}}");
    }
    s.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"ruleId\":\"");
        s.push_str(f.rule);
        s.push_str("\",\"level\":\"error\",\"message\":{\"text\":");
        json_string(&f.message, &mut s);
        s.push_str("},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
        json_string(&f.path, &mut s);
        s.push_str("},\"region\":{\"startLine\":");
        s.push_str(&f.line.to_string());
        s.push_str(",\"startColumn\":");
        s.push_str(&f.col.to_string());
        s.push_str("}}}]}");
    }
    s.push_str("]}]}");
    s
}

fn json_string(v: &str, out: &mut String) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- scoping

/// Files whose request-handling / frame paths must be panic-free and use
/// bounded reads: the server's request pipeline plus both shard layers.
fn network_scoped(path: &str) -> bool {
    path.ends_with("crates/server/src/server.rs")
        || path.ends_with("crates/server/src/reactor.rs")
        || path.ends_with("crates/server/src/batch.rs")
        || path.ends_with("crates/server/src/registry.rs")
        || path.ends_with("crates/server/src/protocol.rs")
        || path.ends_with("crates/runtime/src/shard.rs")
        || path.ends_with("crates/cholesky/src/shard.rs")
        || path.ends_with("crates/fleet/src/lib.rs")
}

/// Files that dispatch on wire frame or op kinds.
fn frame_scoped(path: &str) -> bool {
    path.ends_with("crates/runtime/src/shard.rs")
        || path.ends_with("crates/cholesky/src/shard.rs")
        || path.ends_with("crates/server/src/protocol.rs")
        || path.ends_with("crates/server/src/server.rs")
        || path.ends_with("crates/fleet/src/lib.rs")
}

/// Files whose raw syscall results must visibly flow into an error check.
fn syscall_scoped(path: &str) -> bool {
    path.starts_with("vendor/polling/") || path.contains("/vendor/polling/")
}

/// The audited-unsafe allowlist: the only places `unsafe` may appear at
/// all. Everything here was reviewed line-by-line for this rule pack (the
/// pool's lifetime erasure, the reactor's raw epoll/eventfd calls, and the
/// AVX2 microkernels); growing the list is a deliberate review event, not
/// a side effect of writing new code.
const AUDITED_UNSAFE: &[&str] = &[
    "vendor/rayon/",
    "vendor/polling/",
    "crates/kernels/src/gemm.rs",
];

// ---------------------------------------------------------------- aliases

/// Resolve `use path::Orig as Alias;` renames: every later `Alias` ident
/// token is rewritten to read `Orig`, so token-pattern rules see through
/// import aliasing (`use std::sync::mpsc::channel as chan; chan()` is
/// still a `channel()` call to the rules). Both texts are slices of the
/// same source buffer, so the rewrite is a pointer swap, not a copy.
/// Underscore imports (`use T as _;`) bind nothing and are skipped.
fn resolve_use_aliases(sig: &mut [Sig<'_>]) {
    // Collect (alias, original) pairs from `Orig as Alias` inside `use`
    // statements (including grouped `use a::{B as C, D as E};` lists).
    let mut renames: Vec<(&[u8], &[u8])> = Vec::new();
    let mut w = 0;
    while w < sig.len() {
        if !sig[w].is_ident(b"use") {
            w += 1;
            continue;
        }
        let mut j = w + 1;
        while j < sig.len() && !sig[j].is_punct(b';') {
            if sig[j].is_ident(b"as")
                && j >= 1
                && sig[j - 1].kind == TokenKind::Ident
                && sig.get(j + 1).is_some_and(|a| {
                    a.kind == TokenKind::Ident && a.text != b"_" && a.text != b"as"
                })
            {
                renames.push((sig[j + 1].text, sig[j - 1].text));
            }
            j += 1;
        }
        w = j + 1;
    }
    if renames.is_empty() {
        return;
    }
    for s in sig.iter_mut() {
        if s.kind == TokenKind::Ident {
            if let Some(&(_, orig)) = renames.iter().find(|(alias, _)| *alias == s.text) {
                s.text = orig;
            }
        }
    }
}

// ----------------------------------------------------------------- allows

/// Scan line comments for `xgs-lint: allow(rule)[: justification]`.
///
/// Only plain `//` comments qualify — doc comments (`///`, `//!`) can
/// *talk about* the syntax without suppressing anything.
pub(crate) fn parse_allows(src: &[u8], toks: &[Token], idx: &LineIndex) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = t.text(src);
        if matches!(text.get(2), Some(b'/') | Some(b'!')) {
            continue;
        }
        let body = trim_ascii(&text[2.min(text.len())..]);
        if !body.starts_with(b"xgs-lint:") {
            continue;
        }
        let mut rest = body;
        while let Some(pos) = find(rest, b"xgs-lint:") {
            rest = &rest[pos + b"xgs-lint:".len()..];
            let Some(ap) = find(rest, b"allow(") else {
                break;
            };
            rest = &rest[ap + b"allow(".len()..];
            let Some(close) = rest.iter().position(|&b| b == b')') else {
                break;
            };
            let rule = String::from_utf8_lossy(&rest[..close]).trim().to_string();
            rest = &rest[close + 1..];
            // Justification: any text after the `)`, past a `:` or dash.
            let just = rest
                .iter()
                .position(|&b| !matches!(b, b':' | b'-' | b' ' | b'\t'))
                .map(|p| &rest[p..])
                .unwrap_or(b"");
            allows.push(Allow {
                rule,
                line: idx.line(t.start),
                justified: !just.is_empty(),
            });
        }
    }
    allows
}

fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

fn trim_ascii(mut b: &[u8]) -> &[u8] {
    while let Some((f, rest)) = b.split_first() {
        if f.is_ascii_whitespace() {
            b = rest;
        } else {
            break;
        }
    }
    b
}

// ----------------------------------------------------------- test regions

/// Byte spans covered by `#[cfg(test)]` items (and `#[test]` functions):
/// the panic/read rules don't apply there. Detected as the token sequence
/// `# [ cfg ( test ) ]` / `# [ test ]` followed by an item whose body is
/// the next brace-balanced block (or a `;`-terminated item).
pub(crate) fn test_regions(sig: &[Sig<'_>]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        let hit = starts_with_seq(&sig[i..], &[b"#", b"[", b"cfg", b"(", b"test", b")", b"]"])
            || starts_with_seq(&sig[i..], &[b"#", b"[", b"test", b"]"]);
        if !hit {
            i += 1;
            continue;
        }
        let start = sig[i].start;
        // Find the item body: first `{` before any top-level `;`.
        let mut j = i;
        let mut depth = 0usize;
        let mut end = None;
        while j < sig.len() {
            let s = &sig[j];
            if s.is_punct(b'{') {
                depth += 1;
            } else if s.is_punct(b'}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end = Some(s.start + 1);
                    break;
                }
            } else if s.is_punct(b';') && depth == 0 {
                end = Some(s.start + 1);
                break;
            }
            j += 1;
        }
        let end = end.unwrap_or(sig.last().map(|s| s.start + 1).unwrap_or(start));
        regions.push((start, end));
        i = j.max(i) + 1;
    }
    regions
}

fn starts_with_seq(sig: &[Sig<'_>], seq: &[&[u8]]) -> bool {
    seq.len() <= sig.len()
        && seq.iter().zip(sig).all(|(want, s)| match s.kind {
            TokenKind::Ident => s.text == *want,
            TokenKind::Punct(b) => *want == [b],
            _ => false,
        })
}

// ------------------------------------------------------------------ rules

type Raw = Vec<(usize, &'static str, String)>;

/// `no-partial-cmp-sort`: any `.partial_cmp(` *call* is a finding
/// (`fn partial_cmp` trait implementations are fine — no leading dot).
fn rule_partial_cmp(_path: &str, sig: &[Sig<'_>], out: &mut Raw) {
    for w in 1..sig.len() {
        if sig[w].is_ident(b"partial_cmp") && sig[w - 1].is_punct(b'.') {
            out.push((
                sig[w].start,
                "no-partial-cmp-sort",
                "call goes through partial_cmp; use f64::total_cmp for a NaN-safe total order"
                    .to_string(),
            ));
        }
    }
}

/// Identifiers that hold raw wire payloads: indexing them without `get`
/// turns a short frame into a panic instead of a typed protocol error.
const WIRE_BUFFERS: &[&[u8]] = &[b"payload"];

/// `no-panic-in-network-path`.
fn rule_no_panic(_path: &str, sig: &[Sig<'_>], in_test: &dyn Fn(usize) -> bool, out: &mut Raw) {
    const PANIC_MACROS: &[&[u8]] = &[b"panic", b"unreachable", b"todo", b"unimplemented"];
    for w in 0..sig.len() {
        let s = &sig[w];
        if in_test(s.start) {
            continue;
        }
        if w > 0 && sig[w - 1].is_punct(b'.') && (s.is_ident(b"unwrap") || s.is_ident(b"expect")) {
            out.push((
                s.start,
                "no-panic-in-network-path",
                format!(
                    "{}() in a network path; route the failure through the typed error enum",
                    String::from_utf8_lossy(s.text)
                ),
            ));
        }
        if PANIC_MACROS.iter().any(|m| s.is_ident(m))
            && sig.get(w + 1).is_some_and(|n| n.is_punct(b'!'))
        {
            out.push((
                s.start,
                "no-panic-in-network-path",
                format!(
                    "{}! in a network path; route the failure through the typed error enum",
                    String::from_utf8_lossy(s.text)
                ),
            ));
        }
        if WIRE_BUFFERS.iter().any(|b| s.is_ident(b))
            && sig.get(w + 1).is_some_and(|n| n.is_punct(b'['))
        {
            out.push((
                s.start,
                "no-panic-in-network-path",
                format!(
                    "indexing wire buffer `{}` can panic on a short frame; use .get(..) and return a protocol error",
                    String::from_utf8_lossy(s.text)
                ),
            ));
        }
    }
}

/// `bounded-read-only`.
fn rule_bounded_read(_path: &str, sig: &[Sig<'_>], in_test: &dyn Fn(usize) -> bool, out: &mut Raw) {
    const UNBOUNDED: &[&[u8]] = &[b"read_line", b"read_to_end", b"read_to_string"];
    for w in 1..sig.len() {
        let s = &sig[w];
        if in_test(s.start) || !sig[w - 1].is_punct(b'.') {
            continue;
        }
        if UNBOUNDED.iter().any(|m| s.is_ident(m)) {
            out.push((
                s.start,
                "bounded-read-only",
                format!(
                    "{}() is unbounded on a network stream; use the fill_buf bounded reader or deadline'd frame reads",
                    String::from_utf8_lossy(s.text)
                ),
            ));
        }
    }
}

/// `no-unbounded-channel-send`: a zero-argument `channel()` call builds an
/// unbounded mpsc queue. In the shard coordinator/reader fan-in a slow
/// consumer then buffers without limit (every TILE publish is a full tile
/// payload), so the bound — or the reasoned decision not to have one —
/// must be explicit: use `sync_channel(n)` or carry a justified allow.
/// Alias-resolved (`use ...::channel as chan;` does not hide the call).
fn rule_unbounded_channel(
    _path: &str,
    sig: &[Sig<'_>],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Raw,
) {
    for w in 0..sig.len() {
        let s = &sig[w];
        if !s.is_ident(b"channel") || in_test(s.start) {
            continue;
        }
        // A call with no arguments: `channel ( )`. Method position
        // (`.channel()`) is some other API, not std::sync::mpsc.
        if w > 0 && sig[w - 1].is_punct(b'.') {
            continue;
        }
        if sig.get(w + 1).is_some_and(|n| n.is_punct(b'('))
            && sig.get(w + 2).is_some_and(|n| n.is_punct(b')'))
        {
            out.push((
                s.start,
                "no-unbounded-channel-send",
                "unbounded channel() in a shard network path; use sync_channel(n) or justify why depth is bounded elsewhere"
                    .to_string(),
            ));
        }
    }
}

/// `no-unjustified-unsafe`: every `unsafe` keyword needs a justified allow.
fn rule_unsafe(_path: &str, sig: &[Sig<'_>], out: &mut Raw) {
    for s in sig {
        if s.is_ident(b"unsafe") {
            out.push((
                s.start,
                "no-unjustified-unsafe",
                "unsafe requires `// xgs-lint: allow(no-unjustified-unsafe): <why it is sound>`"
                    .to_string(),
            ));
        }
    }
}

/// `frame-kind-exhaustive`: inside a `match` whose scrutinee names a wire
/// kind (`kind`, `task_kind`, `op`) or whose arms use `K_*`/`KIND_*`
/// constants, a bare `_ =>` arm is a finding — unknown wire values must be
/// bound to a name and answered with a protocol error so that adding a
/// frame kind can never be silently mis-dispatched. Test regions are
/// exempt (tests may deliberately construct partial matches).
fn rule_frame_exhaustive(
    _path: &str,
    sig: &[Sig<'_>],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Raw,
) {
    const SCRUTINEES: &[&[u8]] = &[b"kind", b"task_kind", b"frame_kind", b"op"];
    let mut w = 0;
    while w < sig.len() {
        if !sig[w].is_ident(b"match") {
            w += 1;
            continue;
        }
        // Scrutinee: tokens up to the match's `{` (at bracket depth 0).
        let mut j = w + 1;
        let mut paren = 0i32;
        let mut kindy = false;
        while j < sig.len() {
            let s = &sig[j];
            if s.is_punct(b'(') || s.is_punct(b'[') {
                paren += 1;
            } else if s.is_punct(b')') || s.is_punct(b']') {
                paren -= 1;
            } else if s.is_punct(b'{') && paren == 0 {
                break;
            } else if SCRUTINEES.iter().any(|n| s.is_ident(n)) {
                kindy = true;
            }
            j += 1;
        }
        if j >= sig.len() {
            break;
        }
        // Body span: matching close brace.
        let open = j;
        let mut depth = 0i32;
        let mut close = sig.len();
        while j < sig.len() {
            if sig[j].is_punct(b'{') {
                depth += 1;
            } else if sig[j].is_punct(b'}') {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
            j += 1;
        }
        let body = &sig[open + 1..close.min(sig.len())];
        let uses_kind_consts = body.iter().any(|s| {
            s.kind == TokenKind::Ident
                && (s.text.starts_with(b"K_") || s.text.starts_with(b"KIND_"))
        });
        if kindy || uses_kind_consts {
            for win in body.windows(3) {
                if win[0].is_ident(b"_")
                    && win[1].is_punct(b'=')
                    && win[2].is_punct(b'>')
                    && !in_test(win[0].start)
                {
                    out.push((
                        win[0].start,
                        "frame-kind-exhaustive",
                        "wildcard `_ =>` on a wire kind match; bind the value (`other =>`) and return a protocol error"
                            .to_string(),
                    ));
                }
            }
        }
        w = open + 1;
    }
}

/// `no-heartbeat-in-hot-loop`: a loop body that *emits* `K_HEARTBEAT`
/// through a send primitive and also emits `K_TASK` is mixing liveness
/// traffic into the per-task send path. Heartbeats exist to bound death
/// detection when the hot path is quiet; riding them on task dispatch
/// makes their cadence a function of load (a stalled dispatcher stops
/// heartbeating exactly when liveness matters) and doubles the frame
/// rate of the hottest loop. Receive-side dispatch (`K_HEARTBEAT` as a
/// match pattern) is fine — only send-call arguments count.
fn rule_heartbeat_hot_loop(
    _path: &str,
    sig: &[Sig<'_>],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Raw,
) {
    /// Offset of the first `send`-like call whose argument list names
    /// `konst`, if any.
    fn emit_site(body: &[Sig<'_>], konst: &[u8]) -> Option<usize> {
        const SENDS: &[&[u8]] = &[b"send", b"write_frame", b"send_frame"];
        let mut i = 0;
        while i < body.len() {
            let callee = &body[i];
            if callee.kind == TokenKind::Ident
                && SENDS.iter().any(|n| callee.is_ident(n))
                && body.get(i + 1).is_some_and(|s| s.is_punct(b'('))
            {
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < body.len() {
                    let s = &body[j];
                    if s.is_punct(b'(') {
                        depth += 1;
                    } else if s.is_punct(b')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if s.is_ident(konst) {
                        return Some(callee.start);
                    }
                    j += 1;
                }
                i = j;
            }
            i += 1;
        }
        None
    }

    let mut w = 0;
    while w < sig.len() {
        let s = &sig[w];
        if !(s.is_ident(b"loop") || s.is_ident(b"while") || s.is_ident(b"for")) {
            w += 1;
            continue;
        }
        // Loop header: tokens up to the body's `{` at bracket depth 0.
        let mut j = w + 1;
        let mut paren = 0i32;
        while j < sig.len() {
            let t = &sig[j];
            if t.is_punct(b'(') || t.is_punct(b'[') {
                paren += 1;
            } else if t.is_punct(b')') || t.is_punct(b']') {
                paren -= 1;
            } else if t.is_punct(b'{') && paren == 0 {
                break;
            }
            j += 1;
        }
        if j >= sig.len() {
            break;
        }
        let open = j;
        let mut depth = 0i32;
        let mut close = sig.len();
        while j < sig.len() {
            if sig[j].is_punct(b'{') {
                depth += 1;
            } else if sig[j].is_punct(b'}') {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
            j += 1;
        }
        let body = &sig[open + 1..close.min(sig.len())];
        if let Some(hb) = emit_site(body, b"K_HEARTBEAT") {
            if emit_site(body, b"K_TASK").is_some() && !in_test(hb) {
                out.push((
                    hb,
                    "no-heartbeat-in-hot-loop",
                    "HEARTBEAT emitted from a loop that also sends TASK frames; liveness \
                     traffic must not ride the per-task send path"
                        .to_string(),
                ));
            }
        }
        // Step inside the header so nested loops are scanned too.
        w = open + 1;
    }
}

/// `no-raw-parallelism-probe`: every layer that sizes itself by the
/// machine must route through the one shared helper
/// (`xgs_runtime::logical_cores()`) so the executor, the shard workers'
/// JOIN advertisement, the bench defaults, and the rayon pool all agree
/// on the same number. A direct `available_parallelism()` call or a
/// `num_cpus::get()` path expression anywhere else is a finding; the
/// helper itself carries the justified allow. Alias-resolved, so
/// `use std::thread::available_parallelism as cores;` does not hide the
/// probe. Tests are *not* exempt: a test probing the machine directly is
/// exactly the inconsistency the rule exists to prevent.
fn rule_raw_parallelism_probe(_path: &str, sig: &[Sig<'_>], out: &mut Raw) {
    for w in 0..sig.len() {
        let s = &sig[w];
        if s.is_ident(b"available_parallelism") && sig.get(w + 1).is_some_and(|n| n.is_punct(b'('))
        {
            out.push((
                s.start,
                "no-raw-parallelism-probe",
                "raw available_parallelism() probe; use xgs_runtime::logical_cores() so every layer sizes itself identically"
                    .to_string(),
            ));
        }
        if s.is_ident(b"num_cpus")
            && sig.get(w + 1).is_some_and(|n| n.is_punct(b':'))
            && sig.get(w + 2).is_some_and(|n| n.is_punct(b':'))
            && sig.get(w + 3).is_some_and(|n| n.is_ident(b"get"))
        {
            out.push((
                s.start,
                "no-raw-parallelism-probe",
                "raw num_cpus::get() probe; use xgs_runtime::logical_cores() so every layer sizes itself identically"
                    .to_string(),
            ));
        }
    }
}

/// `safety-comment-required`: every `unsafe` keyword must be preceded —
/// between the previous `{`, `}`, or `;` and the keyword itself — by a
/// comment naming SAFETY. Accepts the conventional spellings: a
/// `// SAFETY: ...` line above the block, a `/// # Safety` doc section on
/// an unsafe fn, or a shared `/* Safety: ... */`. This is deliberately a
/// *separate* obligation from `no-unjustified-unsafe`: the allow justifies
/// why the site exists at all; the SAFETY comment states the invariant the
/// unsafe code relies on, next to the code, for the reviewer who edits it.
fn rule_safety_comment(_path: &str, src: &[u8], toks: &[Token], sig: &[Sig<'_>], out: &mut Raw) {
    for s in sig {
        if !s.is_ident(b"unsafe") {
            continue;
        }
        // Raw-token index of this keyword (token spans tile the file, so
        // the partition point lands exactly on it).
        let ri = toks.partition_point(|t| t.start < s.start);
        let mut documented = false;
        let mut k = ri;
        while k > 0 {
            k -= 1;
            let t = &toks[k];
            match t.kind {
                TokenKind::LineComment | TokenKind::BlockComment
                    if find(&t.text(src).to_ascii_lowercase(), b"safety").is_some() =>
                {
                    documented = true;
                    break;
                }
                // Statement/item boundary: the comment must sit with the
                // unsafe site, not anywhere earlier in the file.
                TokenKind::Punct(b'{') | TokenKind::Punct(b'}') | TokenKind::Punct(b';') => break,
                _ => {}
            }
        }
        if !documented {
            out.push((
                s.start,
                "safety-comment-required",
                "unsafe without a `// SAFETY:` comment on the preceding lines; state the invariant this site relies on"
                    .to_string(),
            ));
        }
    }
}

/// `no-unsafe-outside-audited-modules`: `unsafe` anywhere outside
/// [`AUDITED_UNSAFE`] is a finding regardless of comments or allows for
/// the *other* unsafe rules — extending the audited surface means
/// extending the allowlist in a reviewed diff.
fn rule_unsafe_audited(path: &str, sig: &[Sig<'_>], out: &mut Raw) {
    if AUDITED_UNSAFE
        .iter()
        .any(|p| path.starts_with(p) || path.ends_with(p) || path.contains(&format!("/{p}")))
    {
        return;
    }
    for s in sig {
        if s.is_ident(b"unsafe") {
            out.push((
                s.start,
                "no-unsafe-outside-audited-modules",
                "unsafe outside the audited allowlist (vendor/rayon, vendor/polling, crates/kernels/src/gemm.rs); move the code there or extend the allowlist in a reviewed change"
                    .to_string(),
            ));
        }
    }
}

/// Raw syscalls whose return value encodes failure as `-1`/negative.
const SYSCALLS: &[&[u8]] = &[
    b"epoll_create1",
    b"epoll_ctl",
    b"epoll_wait",
    b"eventfd",
    b"read",
    b"write",
    b"close",
];

/// `syscall-ret-checked` (vendor/polling only): a raw syscall's result
/// must visibly flow into an error check — a comparison right after the
/// call (`< 0`, `== -1`, `?`), a `match` on the call, or a `let` binding
/// whose name later appears next to a comparison. Discarding the result
/// (`unsafe { close(fd) };`) needs a justified allow saying why best-effort
/// is correct there.
fn rule_syscall_ret(_path: &str, sig: &[Sig<'_>], out: &mut Raw) {
    for w in 0..sig.len() {
        let s = &sig[w];
        if !SYSCALLS.iter().any(|n| s.is_ident(n)) {
            continue;
        }
        if !sig.get(w + 1).is_some_and(|n| n.is_punct(b'(')) {
            continue;
        }
        // Not a call: extern declarations (`fn read(...)`) and method
        // position (`stream.read(...)` is std::io, not the raw syscall).
        if w > 0 && (sig[w - 1].is_punct(b'.') || sig[w - 1].is_ident(b"fn")) {
            continue;
        }
        // Span of the argument list.
        let mut depth = 0i32;
        let mut j = w + 1;
        let mut close = None;
        while j < sig.len() {
            if sig[j].is_punct(b'(') {
                depth += 1;
            } else if sig[j].is_punct(b')') {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(close) = close else { continue };

        // (a) The result flows directly into a comparison or `?` after the
        // call (skipping `}` from a wrapping `unsafe { ... }`).
        let mut k = close + 1;
        while sig.get(k).is_some_and(|t| t.is_punct(b'}')) {
            k += 1;
        }
        if sig.get(k).is_some_and(|t| {
            t.is_punct(b'<')
                || t.is_punct(b'>')
                || t.is_punct(b'?')
                || (t.is_punct(b'=') && sig.get(k + 1).is_some_and(|n| n.is_punct(b'=')))
                || (t.is_punct(b'!') && sig.get(k + 1).is_some_and(|n| n.is_punct(b'=')))
        }) {
            continue;
        }

        // Walk back over `unsafe {` wrappers to see the binding context.
        let mut b = w;
        while b > 0 && (sig[b - 1].is_punct(b'{') || sig[b - 1].is_ident(b"unsafe")) {
            b -= 1;
        }
        // (b) The whole call is a match scrutinee.
        if b > 0 && sig[b - 1].is_ident(b"match") {
            continue;
        }
        // (c) `let [mut] name = [unsafe {] call(..)` and `name` later sits
        // next to a comparison operator.
        let mut checked = false;
        if b > 0 && sig[b - 1].is_punct(b'=') {
            let mut t = b - 1;
            let mut let_idx = None;
            let mut guard = 0;
            while t > 0 && guard < 16 {
                t -= 1;
                guard += 1;
                let x = &sig[t];
                if x.is_punct(b';') || x.is_punct(b'{') || x.is_punct(b'}') {
                    break;
                }
                if x.is_ident(b"let") {
                    let_idx = Some(t);
                    break;
                }
            }
            if let Some(li) = let_idx {
                let mut ni = li + 1;
                if sig.get(ni).is_some_and(|x| x.is_ident(b"mut")) {
                    ni += 1;
                }
                if let Some(name) = sig
                    .get(ni)
                    .filter(|x| x.kind == TokenKind::Ident && x.text != b"_")
                    .map(|x| x.text)
                {
                    let is_cmp_at = |m: usize| {
                        sig.get(m).is_some_and(|t| {
                            t.is_punct(b'<')
                                || t.is_punct(b'>')
                                || (t.is_punct(b'=')
                                    && sig.get(m + 1).is_some_and(|n| n.is_punct(b'=')))
                                || (t.is_punct(b'!')
                                    && sig.get(m + 1).is_some_and(|n| n.is_punct(b'=')))
                        })
                    };
                    let cmp_before = |m: usize| {
                        m >= 1
                            && sig.get(m - 1).is_some_and(|t| {
                                t.is_punct(b'<')
                                    || t.is_punct(b'>')
                                    || (t.is_punct(b'=')
                                        && m >= 2
                                        && sig.get(m - 2).is_some_and(|p| {
                                            p.is_punct(b'=')
                                                || p.is_punct(b'!')
                                                || p.is_punct(b'<')
                                                || p.is_punct(b'>')
                                        }))
                            })
                    };
                    for (m, t) in sig.iter().enumerate().take(close + 4000).skip(close) {
                        if t.kind == TokenKind::Ident
                            && t.text == name
                            && (is_cmp_at(m + 1) || cmp_before(m))
                        {
                            checked = true;
                            break;
                        }
                    }
                }
            }
        }
        if !checked {
            out.push((
                s.start,
                "syscall-ret-checked",
                format!(
                    "result of raw {}() is never error-checked; compare it (or justify the allow for best-effort sites)",
                    String::from_utf8_lossy(s.text)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src.as_bytes())
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn partial_cmp_call_flagged_impl_not() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(
            rules_hit("crates/x/src/lib.rs", src),
            ["no-partial-cmp-sort"]
        );
        let imp =
            "impl PartialOrd for T { fn partial_cmp(&self, o: &T) -> Option<Ordering> { None } }";
        assert!(rules_hit("crates/x/src/lib.rs", imp).is_empty());
    }

    #[test]
    fn string_literals_never_trigger() {
        let src = r#"fn f() { let s = "x.unwrap() unsafe _ =>"; }"#;
        assert!(rules_hit("crates/server/src/server.rs", src).is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "fn f(v: &mut Vec<f64>) {\n    // xgs-lint: allow(no-partial-cmp-sort): NaN-free by construction\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}";
        assert!(rules_hit("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_finding() {
        let src = "fn f(v: &mut Vec<f64>) {\n    // xgs-lint: allow(no-partial-cmp-sort)\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}";
        let hit = rules_hit("crates/x/src/lib.rs", src);
        assert!(hit.contains(&"no-partial-cmp-sort"), "{hit:?}");
        assert!(hit.contains(&"unjustified-allow"), "{hit:?}");
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_panic_rules() {
        let src = "fn run() -> Result<(), E> { Ok(()) }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { run().unwrap(); }\n}";
        assert!(rules_hit("crates/server/src/server.rs", src).is_empty());
    }

    #[test]
    fn frame_wildcard_flagged_binding_ok() {
        let bad = "fn f(kind: u8) { match kind { K_HELLO => a(), _ => b(), } }";
        assert_eq!(
            rules_hit("crates/runtime/src/shard.rs", bad),
            ["frame-kind-exhaustive"]
        );
        let good = "fn f(kind: u8) { match kind { K_HELLO => a(), other => err(other), } }";
        assert!(rules_hit("crates/runtime/src/shard.rs", good).is_empty());
        // Matches on non-kind scrutinees keep their wildcard freedom.
        let unrelated = "fn f(x: u8) { match x { 1 => a(), _ => b(), } }";
        assert!(rules_hit("crates/runtime/src/shard.rs", unrelated).is_empty());
        // The registration/liveness kinds are wire kinds like any other.
        let fleet = "fn f(kind: u8) { match kind { K_JOIN => a(), K_HEARTBEAT => b(), K_ASSIGN => c(), _ => d(), } }";
        assert_eq!(
            rules_hit("crates/fleet/src/lib.rs", fleet),
            ["frame-kind-exhaustive"]
        );
    }

    #[test]
    fn heartbeat_in_hot_loop_flagged_separate_loops_ok() {
        // Liveness frames on the per-task send path: flagged.
        let bad = "fn f(co: &mut C) { for id in order { co.send(w, K_TASK, &t); co.send(w, K_HEARTBEAT, &hb); } }";
        assert_eq!(
            rules_hit("crates/cholesky/src/shard.rs", bad),
            ["no-heartbeat-in-hot-loop"]
        );
        // Heartbeats from their own (drain/monitor) loop: fine.
        let good = "fn f(co: &mut C) { for id in order { co.send(w, K_TASK, &t); } for w in 0..n { co.send(w, K_HEARTBEAT, &hb); } }";
        assert!(rules_hit("crates/cholesky/src/shard.rs", good).is_empty());
        // Receive-side dispatch on K_HEARTBEAT next to a TASK send is not
        // an emission: only send-call arguments count.
        let dispatch = "fn f() { loop { match kind { K_HEARTBEAT => pong(), other => err(other), } co.send(w, K_TASK, &t); } }";
        assert!(rules_hit("crates/cholesky/src/shard.rs", dispatch).is_empty());
        // A nested hot loop inside a quiet outer loop is still caught.
        let nested = "fn f() { loop { step(); while go { write_frame(s, K_TASK, &t); write_frame(s, K_HEARTBEAT, &hb); } } }";
        assert_eq!(
            rules_hit("crates/fleet/src/lib.rs", nested),
            ["no-heartbeat-in-hot-loop"]
        );
        // Outside the frame-scoped files the rule does not apply.
        assert!(rules_hit("crates/x/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn bounded_read_and_wire_index() {
        let src =
            "fn f(r: &mut R, payload: &[u8]) -> Res { r.read_line(&mut s); decode(&payload[8..]) }";
        let hit = rules_hit("crates/cholesky/src/shard.rs", src);
        assert!(hit.contains(&"bounded-read-only"), "{hit:?}");
        assert!(hit.contains(&"no-panic-in-network-path"), "{hit:?}");
    }

    #[test]
    fn unbounded_channel_flagged_bounded_ok() {
        let bad = "fn f() { let (tx, rx) = channel(); }";
        assert_eq!(
            rules_hit("crates/cholesky/src/shard.rs", bad),
            ["no-unbounded-channel-send"]
        );
        let bounded = "fn f() { let (tx, rx) = sync_channel(8); }";
        assert!(rules_hit("crates/cholesky/src/shard.rs", bounded).is_empty());
        // With-capacity constructors of other queue types are not mpsc.
        let method = "fn f(b: &B) { let c = b.channel(); }";
        assert!(rules_hit("crates/cholesky/src/shard.rs", method).is_empty());
        // Outside the network scope the rule does not apply.
        assert!(rules_hit("crates/x/src/lib.rs", bad).is_empty());
        // A justified allow is the sanctioned escape hatch.
        let allowed = "fn f() {\n    // xgs-lint: allow(no-unbounded-channel-send): depth bounded by in-flight DONEs\n    let (tx, rx) = channel();\n}";
        assert!(rules_hit("crates/cholesky/src/shard.rs", allowed).is_empty());
    }

    #[test]
    fn use_alias_resolution_sees_through_renames() {
        // The aliased call is still a zero-arg mpsc channel construction.
        let aliased = "use std::sync::mpsc::channel as chan;\nfn f() { let (tx, rx) = chan(); }";
        assert_eq!(
            rules_hit("crates/cholesky/src/shard.rs", aliased),
            ["no-unbounded-channel-send"]
        );
        // Grouped imports resolve too.
        let grouped =
            "use std::sync::mpsc::{channel as fanin, Receiver};\nfn f() { let x = fanin(); }";
        assert_eq!(
            rules_hit("crates/cholesky/src/shard.rs", grouped),
            ["no-unbounded-channel-send"]
        );
        // `as _` binds nothing; expression casts are not aliases.
        let cast = "use std::io::Read as _;\nfn f(x: u8) -> u64 { x as u64 }";
        assert!(rules_hit("crates/cholesky/src/shard.rs", cast).is_empty());
        // Unaliased names keep working when renames exist elsewhere.
        let mixed = "use std::sync::mpsc::sync_channel as sc;\nfn f() { let a = sc(4); let b = channel(); }";
        assert_eq!(
            rules_hit("crates/cholesky/src/shard.rs", mixed),
            ["no-unbounded-channel-send"]
        );
    }

    #[test]
    fn raw_parallelism_probe_flagged_helper_allowed() {
        let bad = "fn workers() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }";
        assert_eq!(
            rules_hit("crates/x/src/lib.rs", bad),
            ["no-raw-parallelism-probe"]
        );
        let ncpus = "fn workers() -> usize { num_cpus::get() }";
        assert_eq!(
            rules_hit("crates/x/src/lib.rs", ncpus),
            ["no-raw-parallelism-probe"]
        );
        // The shared helper is the one sanctioned site, via the allow.
        let helper = "pub fn logical_cores() -> usize {\n    // xgs-lint: allow(no-raw-parallelism-probe): this is the shared helper itself\n    num_cpus::get()\n}";
        assert!(rules_hit("crates/runtime/src/lib.rs", helper).is_empty());
        // Aliasing the std probe does not hide it.
        let aliased = "use std::thread::available_parallelism as cores;\nfn f() -> usize { cores().map(|n| n.get()).unwrap_or(1) }";
        assert_eq!(
            rules_hit("crates/x/src/lib.rs", aliased),
            ["no-raw-parallelism-probe"]
        );
        // Unrelated `get` calls and doc-comment mentions are inert.
        let quiet = "/// Calls `num_cpus::get()` internally.\nfn f(m: &M) -> usize { m.get() }";
        assert!(rules_hit("crates/x/src/lib.rs", quiet).is_empty());
        // Routing through the helper is what the rule wants to see.
        let routed = "fn f() -> usize { xgs_runtime::logical_cores() }";
        assert!(rules_hit("crates/x/src/lib.rs", routed).is_empty());
    }

    #[test]
    fn unsafe_needs_allow_safety_comment_and_audited_module() {
        // A bare unsafe outside the allowlist trips all three unsafe rules.
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        let hit = rules_hit("crates/x/src/lib.rs", bad);
        assert!(hit.contains(&"no-unjustified-unsafe"), "{hit:?}");
        assert!(hit.contains(&"safety-comment-required"), "{hit:?}");
        assert!(
            hit.contains(&"no-unsafe-outside-audited-modules"),
            "{hit:?}"
        );
        // Inside an audited module, with a SAFETY comment and a justified
        // allow, the site is clean.
        let good = "fn f() {\n    // SAFETY: caller upholds the aliasing invariant checked above.\n    // xgs-lint: allow(no-unjustified-unsafe): checked invariant above\n    unsafe { core::hint::unreachable_unchecked() }\n}";
        assert!(rules_hit("vendor/rayon/src/lib.rs", good).is_empty());
        // The audited path alone is not enough: the SAFETY comment and the
        // allow are still owed there.
        let hit = rules_hit("vendor/rayon/src/lib.rs", bad);
        assert!(hit.contains(&"safety-comment-required"), "{hit:?}");
        assert!(
            !hit.contains(&"no-unsafe-outside-audited-modules"),
            "{hit:?}"
        );
    }

    #[test]
    fn safety_comment_stops_at_statement_boundary() {
        // A SAFETY comment on a *previous* statement does not cover this
        // unsafe; the boundary `;` cuts the backward scan.
        let far = "fn f() {\n    // SAFETY: about something else entirely.\n    a();\n    unsafe { b() }\n}";
        let hit = rules_hit("vendor/rayon/src/lib.rs", far);
        assert!(hit.contains(&"safety-comment-required"), "{hit:?}");
        // `let _ = unsafe { ... }` keeps the comment and binding together.
        let bound = "fn f() {\n    // SAFETY: len was checked against capacity.\n    // xgs-lint: allow(no-unjustified-unsafe): bounds proven above\n    let x = unsafe { b() };\n    use_it(x);\n}";
        assert!(rules_hit("vendor/rayon/src/lib.rs", bound).is_empty());
        // A doc-comment `# Safety` section on an unsafe fn counts.
        let docfn = "/// Does a thing.\n///\n/// # Safety\n/// Caller must pin the buffer.\n// xgs-lint: allow(no-unjustified-unsafe): contract documented above\npub unsafe fn g() {}";
        assert!(rules_hit("vendor/rayon/src/lib.rs", docfn).is_empty());
    }

    #[test]
    fn syscall_results_must_flow_into_checks() {
        // Discarded result: flagged.
        let bad = "fn f(fd: i32) { unsafe { close(fd) }; }";
        let hit = rules_hit("vendor/polling/src/lib.rs", bad);
        assert!(hit.contains(&"syscall-ret-checked"), "{hit:?}");
        // Direct comparison after the call: fine.
        let cmp = "fn f(fd: i32) -> bool { unsafe { close(fd) } < 0 }";
        assert!(!rules_hit("vendor/polling/src/lib.rs", cmp).contains(&"syscall-ret-checked"));
        // Bound then compared later: fine.
        let bound = "fn f() -> io::Result<i32> { let rc = unsafe { eventfd(0, 0) }; if rc < 0 { return Err(last()); } Ok(rc) }";
        assert!(!rules_hit("vendor/polling/src/lib.rs", bound).contains(&"syscall-ret-checked"));
        // Bound and never compared: flagged.
        let unused = "fn f() { let rc = unsafe { eventfd(0, 0) }; stash(rc); }";
        assert!(rules_hit("vendor/polling/src/lib.rs", unused).contains(&"syscall-ret-checked"));
        // Match on the call is a check.
        let matched = "fn f(fd: i32) { match unsafe { close(fd) } { 0 => (), e => log(e), } }";
        assert!(!rules_hit("vendor/polling/src/lib.rs", matched).contains(&"syscall-ret-checked"));
        // Method-position read is std::io, not the raw syscall.
        let io = "fn f(s: &mut S, buf: &mut [u8]) { s.read(buf); }";
        assert!(!rules_hit("vendor/polling/src/lib.rs", io).contains(&"syscall-ret-checked"));
        // Outside vendor/polling the rule does not apply.
        assert!(!rules_hit("crates/x/src/lib.rs", bad).contains(&"syscall-ret-checked"));
        // A justified allow is the sanctioned escape for best-effort sites.
        let allowed = "fn f(fd: i32) {\n    // xgs-lint: allow(syscall-ret-checked): best-effort close on the error path\n    unsafe { close(fd) };\n}";
        assert!(!rules_hit("vendor/polling/src/lib.rs", allowed).contains(&"syscall-ret-checked"));
    }
}

//! Mutation test for the dynamic race checker: the checker must stay
//! silent on the pool's real synchronization and must fire when one
//! declared edge is deliberately dropped.
//!
//! A detector that has only ever been observed silent is indistinguishable
//! from one that checks nothing, so this test drives the same workload
//! three times: clean (must be silent), with the pool's chunk-completion
//! release edge removed from the model via
//! [`xgs_runtime::race::set_mutation_drop_completion_edge`] (must report a
//! `write-read` race — the caller's post-join read of a pool-run chunk has
//! no happens-before chain), and clean again (must be silent again).

use rayon::prelude::*;

/// One parallel round on a private pool: enough items that pool workers
/// reliably claim chunks while the caller claims inline.
fn run_round(pool: &rayon::ThreadPool, items: &[u64]) -> u64 {
    let out: Vec<u64> = pool.install(|| {
        items
            .par_iter()
            .map(|&x| {
                std::thread::sleep(std::time::Duration::from_micros(100));
                x.wrapping_mul(0x9E37_79B9).rotate_left(7)
            })
            .collect()
    });
    out.iter().fold(0u64, |a, &b| a.wrapping_add(b))
}

#[test]
fn checker_fires_exactly_when_the_completion_edge_is_dropped() {
    xgs_runtime::race::set_enabled(Some(true));
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("private pool");
    let items: Vec<u64> = (0..512).collect();
    let _ = xgs_runtime::race::take_races();

    // Phase 1: the real protocol is race-free and the model must agree.
    let base = xgs_runtime::race::race_count();
    let clean: Vec<u64> = (0..5).map(|_| run_round(&pool, &items)).collect();
    assert_eq!(
        xgs_runtime::race::race_count(),
        base,
        "clean rounds must not report races: {:?}",
        xgs_runtime::race::take_races()
    );

    // Phase 2: drop the chunk-completion release edge from the model. The
    // computation itself is untouched (results stay correct) — only the
    // checker's view loses the edge, and it must notice.
    xgs_runtime::race::set_mutation_drop_completion_edge(true);
    let mut mutated = Vec::new();
    for _ in 0..20 {
        mutated.push(run_round(&pool, &items));
        if xgs_runtime::race::race_count() > base {
            break;
        }
    }
    xgs_runtime::race::set_mutation_drop_completion_edge(false);
    assert!(
        xgs_runtime::race::race_count() > base,
        "dropping the completion edge must be detected within 20 rounds"
    );
    let races = xgs_runtime::race::take_races();
    assert!(
        races.iter().any(|r| r.kind == "write-read"),
        "the missing edge manifests as an unordered write-then-read: {races:?}"
    );

    // The mutation only blinds the checker; results must be unaffected.
    for m in &mutated {
        assert_eq!(*m, clean[0], "mutation must not change computed results");
    }

    // Phase 3: with the edge restored the checker is silent again.
    let after = xgs_runtime::race::race_count();
    for _ in 0..5 {
        run_round(&pool, &items);
    }
    assert_eq!(
        xgs_runtime::race::race_count(),
        after,
        "restored edge must be silent: {:?}",
        xgs_runtime::race::take_races()
    );
    xgs_runtime::race::set_enabled(None);
}

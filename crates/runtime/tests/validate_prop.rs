//! Property tests for the schedule validator: every realized schedule of a
//! random DAG must pass, under every scheduling policy, and corrupted
//! schedules of the same DAGs must be rejected.

use proptest::prelude::*;
use xgs_runtime::{
    check_schedule, crosscheck_static_edges, derived_edges, execute_opts, Access, DataId,
    ExecOptions, SchedPolicy, TaskGraph, TaskOrder,
};

/// Random access lists over a small data pool, from a splitmix-style LCG.
/// The leading write/read pair guarantees at least one RAW edge.
fn random_accesses(seed: u64, tasks: usize) -> Vec<Vec<Access>> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s >> 16
    };
    let mut out = vec![
        vec![Access::write(DataId(0))],
        vec![Access::read(DataId(0))],
    ];
    for _ in 2..tasks {
        let n_acc = 1 + (next() % 3) as usize;
        let mut accs = Vec::with_capacity(n_acc);
        for _ in 0..n_acc {
            let d = DataId(next() % 6);
            if next() % 2 == 0 {
                accs.push(Access::read(d));
            } else {
                accs.push(Access::write(d));
            }
        }
        out.push(accs);
    }
    out
}

fn graph_from(accesses: &[Vec<Access>]) -> TaskGraph {
    let mut g = TaskGraph::new();
    for (i, accs) in accesses.iter().enumerate() {
        // Mixed priorities exercise the heap orderings.
        g.insert("task", accs.clone(), (i % 7) as i64, 0.0, || {
            std::hint::black_box(0u64);
        });
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_policy_produces_a_valid_schedule(seed in 0u64..1_000_000) {
        let accesses = random_accesses(seed, 60);
        for policy in [SchedPolicy::Priority, SchedPolicy::Fifo, SchedPolicy::Lifo] {
            // execute_opts panics if the validator finds a violation; the
            // summary confirms it actually checked real edges.
            let r = execute_opts(
                graph_from(&accesses),
                4,
                ExecOptions { policy, validate: true, ..ExecOptions::default() },
            );
            let v = r.metrics.unwrap().validation.unwrap();
            prop_assert!(
                v.edges_checked >= 1,
                "{policy:?}: seeded RAW edge missing from census"
            );
            prop_assert!(v.raw_edges >= 1);
        }
    }

    #[test]
    fn static_edges_match_dynamic_derivation(seed in 0u64..1_000_000) {
        // The pre-execution checker (xgs-analysis) and the post-run
        // validator derive hazard edges independently; on any access
        // lists they must agree edge-for-edge, in order.
        let accesses = random_accesses(seed, 60);
        let checked = match crosscheck_static_edges(&accesses) {
            Ok(n) => n,
            Err(e) => return Err(e),
        };
        prop_assert_eq!(checked, derived_edges(&accesses).len());
        prop_assert!(checked >= 1, "seeded RAW edge missing");
    }

    #[test]
    fn reversed_schedules_are_rejected(seed in 0u64..1_000_000) {
        let accesses = random_accesses(seed, 40);
        let n = accesses.len();
        // Forward serial order: task i runs i-th — always valid.
        let forward: Vec<TaskOrder> = (0..n)
            .map(|i| TaskOrder { start_seq: 2 * i as u64, end_seq: 2 * i as u64 + 1 })
            .collect();
        let summary = match check_schedule(&accesses, &forward) {
            Ok(s) => s,
            Err(v) => {
                return Err(format!("insertion order must validate, got {} violations", v.len()))
            }
        };
        prop_assert!(summary.edges_checked >= 1);
        // Reversed serial order: every edge (pred before succ in insertion
        // order) is now violated, so the check must fail.
        let reversed: Vec<TaskOrder> = (0..n)
            .map(|i| {
                let pos = (n - 1 - i) as u64;
                TaskOrder { start_seq: 2 * pos, end_seq: 2 * pos + 1 }
            })
            .collect();
        let violations = match check_schedule(&accesses, &reversed) {
            Ok(_) => return Err("reversed schedule must not validate".to_string()),
            Err(v) => v,
        };
        prop_assert_eq!(violations.len() as u64, summary.edges_checked);
    }
}

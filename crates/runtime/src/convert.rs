//! Global counters for on-demand precision conversions.
//!
//! Algorithm 1 marks the precision-lead operand of each kernel with `+`;
//! PaRSEC "will move and convert on-the-fly the operands with the `*` sign
//! to match the precision at the receiver side". The solver calls
//! [`count_conversion`] every time it performs such a cast, so runs can
//! report how much conversion traffic the adaptive format mix generated.

use std::sync::atomic::{AtomicU64, Ordering};
use xgs_kernels::Precision;

static F64_TO_F32: AtomicU64 = AtomicU64::new(0);
static F64_TO_F16: AtomicU64 = AtomicU64::new(0);
static F32_TO_F64: AtomicU64 = AtomicU64::new(0);
static F32_TO_F16: AtomicU64 = AtomicU64::new(0);
static F16_TO_F32: AtomicU64 = AtomicU64::new(0);
static F16_TO_F64: AtomicU64 = AtomicU64::new(0);

/// Record a conversion of `elements` scalars from `from` to `to`.
/// Same-precision "conversions" are ignored.
pub fn count_conversion(from: Precision, to: Precision, elements: u64) {
    let counter = match (from, to) {
        (Precision::F64, Precision::F32) => &F64_TO_F32,
        (Precision::F64, Precision::F16) => &F64_TO_F16,
        (Precision::F32, Precision::F64) => &F32_TO_F64,
        (Precision::F32, Precision::F16) => &F32_TO_F16,
        (Precision::F16, Precision::F32) => &F16_TO_F32,
        (Precision::F16, Precision::F64) => &F16_TO_F64,
        _ => return,
    };
    counter.fetch_add(elements, Ordering::Relaxed);
}

/// Snapshot of all conversion counters (elements converted).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConversionCounts {
    pub f64_to_f32: u64,
    pub f64_to_f16: u64,
    pub f32_to_f64: u64,
    pub f32_to_f16: u64,
    pub f16_to_f32: u64,
    pub f16_to_f64: u64,
}

impl ConversionCounts {
    pub fn total(&self) -> u64 {
        self.f64_to_f32
            + self.f64_to_f16
            + self.f32_to_f64
            + self.f32_to_f16
            + self.f16_to_f32
            + self.f16_to_f64
    }

    /// Total demotions (information-losing casts).
    pub fn demotions(&self) -> u64 {
        self.f64_to_f32 + self.f64_to_f16 + self.f32_to_f16
    }

    /// Total promotions (exact casts).
    pub fn promotions(&self) -> u64 {
        self.f32_to_f64 + self.f16_to_f32 + self.f16_to_f64
    }

    /// Counter growth since `baseline` (a snapshot taken earlier in the
    /// same process). Saturating, so a [`reset_conversion_counts`]
    /// between the snapshots yields zeros rather than wrap-around.
    pub fn since(&self, baseline: &ConversionCounts) -> ConversionCounts {
        ConversionCounts {
            f64_to_f32: self.f64_to_f32.saturating_sub(baseline.f64_to_f32),
            f64_to_f16: self.f64_to_f16.saturating_sub(baseline.f64_to_f16),
            f32_to_f64: self.f32_to_f64.saturating_sub(baseline.f32_to_f64),
            f32_to_f16: self.f32_to_f16.saturating_sub(baseline.f32_to_f16),
            f16_to_f32: self.f16_to_f32.saturating_sub(baseline.f16_to_f32),
            f16_to_f64: self.f16_to_f64.saturating_sub(baseline.f16_to_f64),
        }
    }
}

/// Read the current counters.
pub fn conversion_counts() -> ConversionCounts {
    ConversionCounts {
        f64_to_f32: F64_TO_F32.load(Ordering::Relaxed),
        f64_to_f16: F64_TO_F16.load(Ordering::Relaxed),
        f32_to_f64: F32_TO_F64.load(Ordering::Relaxed),
        f32_to_f16: F32_TO_F16.load(Ordering::Relaxed),
        f16_to_f32: F16_TO_F32.load(Ordering::Relaxed),
        f16_to_f64: F16_TO_F64.load(Ordering::Relaxed),
    }
}

/// Zero all counters (start of a measured region).
pub fn reset_conversion_counts() {
    F64_TO_F32.store(0, Ordering::Relaxed);
    F64_TO_F16.store(0, Ordering::Relaxed);
    F32_TO_F64.store(0, Ordering::Relaxed);
    F32_TO_F16.store(0, Ordering::Relaxed);
    F16_TO_F32.store(0, Ordering::Relaxed);
    F16_TO_F64.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reset() {
        reset_conversion_counts();
        count_conversion(Precision::F64, Precision::F32, 100);
        count_conversion(Precision::F16, Precision::F64, 7);
        count_conversion(Precision::F64, Precision::F64, 999); // ignored
        let c = conversion_counts();
        assert_eq!(c.f64_to_f32, 100);
        assert_eq!(c.f16_to_f64, 7);
        assert_eq!(c.total(), 107);
        assert_eq!(c.demotions(), 100);
        assert_eq!(c.promotions(), 7);
        reset_conversion_counts();
        assert_eq!(conversion_counts().total(), 0);
    }
}

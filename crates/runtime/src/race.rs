//! Dynamic happens-before race checker: vector clocks over the runtime's
//! *declared* synchronization edges.
//!
//! The static side of this PR (the `xgs-analysis` lock graph) proves lock
//! *acquisition order* sound; this module checks the complementary dynamic
//! property — that the synchronization edges the runtime claims to
//! establish actually cover every conflicting access it performs. Each
//! participating thread carries a vector clock; each declared edge
//! (dependency release in [`crate::exec`], batch inject/complete in the
//! `rayon` pool, frame send/receive in [`crate::shard`], completion-hub
//! push/drain in the server) joins clocks in the usual release/acquire
//! way; each declared access is checked against the clock of the last
//! conflicting access. A conflicting pair with no happens-before chain is
//! recorded as a [`Race`] and printed to stderr.
//!
//! The checker validates the **model**, not raw memory: it sees only the
//! edges the runtime declares, so a pair ordered by some undeclared
//! mechanism (an incidental mutex, say) can still be flagged. That is
//! deliberate — the declared-edge graph is the contract the executor's
//! observational-equivalence argument rests on, and an access pair relying
//! on incidental ordering is a bug in that contract even when the bytes
//! happen to be safe. The converse holds too: the checker never invents an
//! edge, so a *missing* declared edge (see the mutation knob below) is
//! caught deterministically once the racing pair lands on two threads.
//!
//! On/off: enabled by default under `debug_assertions` (every `cargo
//! test` execution is checked); opt-in for release builds with `XGS_RACE=1`
//! in the environment; [`set_enabled`] overrides both (used by the
//! `validator_overhead` bench to measure the checker's cost).
//!
//! [`set_mutation_drop_completion_edge`] deliberately drops the pool's
//! chunk-completion edge so the integration test can prove the checker
//! actually fires — a checker only ever observed silent is indistinguishable
//! from one that checks nothing.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Address spaces keying edges and cells, so independent subsystems can
/// never alias. Exec additionally scopes by run id, the pool by batch id.
pub const SPACE_EXEC: u8 = 1;
const SPACE_POOL_BATCH: u8 = 2;
const SPACE_POOL_CHUNK: u8 = 3;
const SPACE_POOL_DONE: u8 = 4;
/// Frame transport ([`crate::shard`]): one coarse channel per frame kind.
pub const SPACE_FRAME: u8 = 5;
/// Server completion hub: one edge per hub instance.
pub const SPACE_HUB: u8 = 6;

/// One detected happens-before violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Race {
    pub space: u8,
    pub scope: u64,
    pub addr: u64,
    /// `"write-write"`, `"read-write"`, or `"write-read"` (prior → new).
    pub kind: &'static str,
}

/// Sparse vector clock: thread slot → event count. Sparse because slots
/// are never recycled (scoped executor pools mint fresh threads per run).
type VClock = HashMap<u32, u64>;

fn join(into: &mut VClock, from: &VClock) {
    for (&slot, &tick) in from {
        let e = into.entry(slot).or_insert(0);
        if *e < tick {
            *e = tick;
        }
    }
}

/// Last conflicting accesses of one tracked cell. Epochs are `(slot,
/// tick)` pairs; `prior happens-before now` iff the current thread's clock
/// at `slot` has reached `tick`.
#[derive(Default)]
struct Cell {
    writer: Option<(u32, u64)>,
    readers: Vec<(u32, u64)>,
}

#[derive(Default)]
struct State {
    edges: HashMap<(u8, u64, u64), VClock>,
    cells: HashMap<(u8, u64, u64), Cell>,
    reports: Vec<Race>,
}

static STATE: OnceLock<Mutex<State>> = OnceLock::new();

/// Monotone count of races detected since process start (including ones
/// already drained by [`take_races`]).
static RACES: AtomicU64 = AtomicU64::new(0);

/// 0 = follow env/build default, 1 = forced off, 2 = forced on.
static FORCE: AtomicU8 = AtomicU8::new(0);

static MUTATION_DROP_COMPLETION: AtomicBool = AtomicBool::new(false);

static SCOPE_IDS: AtomicU64 = AtomicU64::new(1);
static SLOT_IDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

struct ThreadCtx {
    slot: u32,
    clock: VClock,
}

fn with_ctx<R>(f: impl FnOnce(&mut ThreadCtx) -> R) -> R {
    LOCAL.with(|cell| {
        let mut ctx = cell.borrow_mut();
        let ctx = ctx.get_or_insert_with(|| {
            let slot = SLOT_IDS.fetch_add(1, Ordering::Relaxed) as u32;
            // A thread's clock starts at 1 for its own component so every
            // recorded epoch is nonzero (an absent clock entry reads 0 and
            // therefore never dominates).
            let mut clock = VClock::new();
            clock.insert(slot, 1);
            ThreadCtx { slot, clock }
        });
        f(ctx)
    })
}

/// Whether the checker is active: [`set_enabled`] override first, then
/// `XGS_RACE` (any value other than empty/`0` enables, `0` disables), then
/// on-in-debug/off-in-release. Installs the pool hook on first true.
pub fn enabled() -> bool {
    let on = match FORCE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| match std::env::var("XGS_RACE") {
                Ok(v) => !v.is_empty() && v != "0",
                Err(_) => cfg!(debug_assertions),
            })
        }
    };
    if on {
        install();
    }
    on
}

/// Force the checker on or off for this process (`None` restores the
/// env/build default). Used by benches to measure overhead in release.
pub fn set_enabled(force: Option<bool>) {
    FORCE.store(
        match force {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::Relaxed,
    );
    if force == Some(true) {
        install();
    }
}

/// Wire the checker into the pool's event stream (idempotent; first
/// enabling does it automatically). A batch injected before installation
/// is simply unobserved — absent information never reports.
pub fn install() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let _ = rayon::set_pool_hook(pool_hook);
    });
}

/// **Test-only sabotage**: while on, the pool's chunk-completion release
/// edge is dropped from the model, so the caller's post-join read of the
/// chunk results has no happens-before chain from pool-run chunks. The
/// seeded-race integration test flips this to prove the checker fires.
pub fn set_mutation_drop_completion_edge(on: bool) {
    MUTATION_DROP_COMPLETION.store(on, Ordering::Relaxed);
}

/// Fresh scope id for namespacing one executor run's edges and cells.
pub fn new_scope() -> u64 {
    SCOPE_IDS.fetch_add(1, Ordering::Relaxed)
}

/// Races detected since process start (monotone, survives [`take_races`]).
pub fn race_count() -> u64 {
    RACES.load(Ordering::Relaxed)
}

/// Drain the pending race reports (at most 64 are retained per drain).
pub fn take_races() -> Vec<Race> {
    std::mem::take(&mut lock_state().reports)
}

fn lock_state() -> std::sync::MutexGuard<'static, State> {
    STATE
        .get_or_init(|| Mutex::new(State::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Release half of an edge: publish everything this thread has done so
/// far to whoever acquires `(space, scope, addr)` later.
pub fn release(space: u8, scope: u64, addr: u64) {
    if !enabled() {
        return;
    }
    with_ctx(|ctx| {
        let mut st = lock_state();
        join(
            st.edges.entry((space, scope, addr)).or_default(),
            &ctx.clock,
        );
        *ctx.clock.entry(ctx.slot).or_insert(1) += 1;
    });
}

/// Acquire half of an edge: inherit everything published through
/// `(space, scope, addr)` so far.
pub fn acquire(space: u8, scope: u64, addr: u64) {
    if !enabled() {
        return;
    }
    with_ctx(|ctx| {
        let st = lock_state();
        if let Some(obj) = st.edges.get(&(space, scope, addr)) {
            join(&mut ctx.clock, obj);
        }
    });
}

/// Declare a read of the cell `(space, scope, addr)`: the last writer (if
/// observed) must happen-before this thread.
pub fn read(space: u8, scope: u64, addr: u64) {
    if !enabled() {
        return;
    }
    access(space, scope, addr, false);
}

/// Declare a write of the cell: the last writer *and* every reader since
/// must happen-before this thread.
pub fn write(space: u8, scope: u64, addr: u64) {
    if !enabled() {
        return;
    }
    access(space, scope, addr, true);
}

fn access(space: u8, scope: u64, addr: u64, is_write: bool) {
    with_ctx(|ctx| {
        let mut st = lock_state();
        let cell = st.cells.entry((space, scope, addr)).or_default();
        let hb = |clock: &VClock, (slot, tick): (u32, u64)| {
            clock.get(&slot).copied().unwrap_or(0) >= tick
        };
        let mut racy: Option<&'static str> = None;
        if let Some(w) = cell.writer {
            if !hb(&ctx.clock, w) {
                racy = Some(if is_write {
                    "write-write"
                } else {
                    "write-read"
                });
            }
        }
        if is_write {
            if racy.is_none() {
                for &r in &cell.readers {
                    if !hb(&ctx.clock, r) {
                        racy = Some("read-write");
                        break;
                    }
                }
            }
            let epoch = (ctx.slot, ctx.clock[&ctx.slot]);
            cell.writer = Some(epoch);
            cell.readers.clear();
        } else {
            let epoch = (ctx.slot, ctx.clock[&ctx.slot]);
            cell.readers.retain(|&(s, _)| s != ctx.slot);
            cell.readers.push(epoch);
        }
        if let Some(kind) = racy {
            let race = Race {
                space,
                scope,
                addr,
                kind,
            };
            let total = RACES.fetch_add(1, Ordering::Relaxed);
            if st.reports.len() < 64 {
                st.reports.push(race);
            }
            if total < 8 {
                eprintln!(
                    "xgs-race: {kind} race on space {space} scope {scope} addr {addr} \
                     (no declared happens-before edge between the accesses)"
                );
            }
        }
    });
}

/// Forget every edge and cell of `(space, scope)` — called when the scope
/// (an executor run, a pool batch) has fully joined, so state stays
/// bounded by the *live* scopes, not by process history.
pub fn retire(space: u8, scope: u64) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    st.edges.retain(|k, _| !(k.0 == space && k.1 == scope));
    st.cells.retain(|k, _| !(k.0 == space && k.1 == scope));
}

/// Mirror of the pool's synchronization edges (see `rayon::PoolEvent` for
/// where each event sits relative to the real atomics). Chunk cells live
/// in the batch's scope and are retired at join.
fn pool_hook(ev: &rayon::PoolEvent) {
    if !enabled() {
        return;
    }
    match *ev {
        rayon::PoolEvent::InjectSend { batch } => release(SPACE_POOL_BATCH, batch, 0),
        rayon::PoolEvent::TicketSteal { batch } => acquire(SPACE_POOL_BATCH, batch, 0),
        rayon::PoolEvent::ChunkStart { batch, chunk } => {
            acquire(SPACE_POOL_BATCH, batch, 0);
            write(SPACE_POOL_CHUNK, batch, chunk);
        }
        rayon::PoolEvent::ChunkDone { batch, .. } => {
            if !MUTATION_DROP_COMPLETION.load(Ordering::Relaxed) {
                release(SPACE_POOL_DONE, batch, 0);
            }
        }
        rayon::PoolEvent::BatchJoin { batch, chunks } => {
            acquire(SPACE_POOL_DONE, batch, 0);
            for c in 0..chunks {
                read(SPACE_POOL_CHUNK, batch, c);
            }
            retire(SPACE_POOL_BATCH, batch);
            retire(SPACE_POOL_CHUNK, batch);
            retire(SPACE_POOL_DONE, batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that toggle the global force flag.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn edge_orders_cross_thread_accesses() {
        let _g = TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(Some(true));
        let scope = new_scope();
        let before = race_count();
        write(SPACE_EXEC, scope, 7);
        release(SPACE_EXEC, scope, 7);
        std::thread::scope(|s| {
            s.spawn(|| {
                acquire(SPACE_EXEC, scope, 7);
                read(SPACE_EXEC, scope, 7);
                write(SPACE_EXEC, scope, 7);
            })
            .join()
            .unwrap();
        });
        assert_eq!(race_count(), before, "ordered accesses must stay silent");
        retire(SPACE_EXEC, scope);
        set_enabled(None);
    }

    #[test]
    fn missing_edge_is_reported_once_per_access() {
        let _g = TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(Some(true));
        let scope = new_scope();
        let before = race_count();
        write(SPACE_EXEC, scope, 1);
        // No release/acquire pair: the second thread races.
        std::thread::scope(|s| {
            s.spawn(|| write(SPACE_EXEC, scope, 1)).join().unwrap();
        });
        assert_eq!(race_count(), before + 1);
        let races = take_races();
        assert!(races
            .iter()
            .any(|r| r.space == SPACE_EXEC && r.scope == scope && r.kind == "write-write"));
        retire(SPACE_EXEC, scope);
        set_enabled(None);
    }

    #[test]
    fn retire_forgets_the_scope() {
        let _g = TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(Some(true));
        let scope = new_scope();
        let before = race_count();
        write(SPACE_EXEC, scope, 3);
        retire(SPACE_EXEC, scope);
        // Same address, fresh history: a racing write has nothing to
        // conflict with.
        std::thread::scope(|s| {
            s.spawn(|| write(SPACE_EXEC, scope, 3)).join().unwrap();
        });
        assert_eq!(race_count(), before);
        retire(SPACE_EXEC, scope);
        set_enabled(None);
    }

    #[test]
    fn disabled_checker_records_nothing() {
        let _g = TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(Some(false));
        let scope = new_scope();
        let before = race_count();
        write(SPACE_EXEC, scope, 9);
        std::thread::scope(|s| {
            s.spawn(|| write(SPACE_EXEC, scope, 9)).join().unwrap();
        });
        assert_eq!(race_count(), before);
        set_enabled(None);
    }
}

//! Lightweight execution metrics.
//!
//! The paper's performance story lives in runtime observability: which
//! kernel class dominates, how deep the ready queue stays (starvation vs.
//! saturation), how evenly the adaptive tile formats load the workers, and
//! how much precision-conversion traffic the format mix generates. This
//! module aggregates those signals during a [`crate::exec`] run into a
//! [`MetricsReport`] that serializes to JSON next to the Chrome trace
//! export ([`crate::stats::chrome_trace_json`]).
//!
//! Collection is cheap by construction: workers accumulate into
//! thread-local scratch merged once at the end, and queue depth is sampled
//! inside the queue mutex that is already held.

use crate::convert::ConversionCounts;
use crate::validate::ValidationSummary;

/// Number of log-scale duration buckets in [`TimeHistogram`].
pub const HIST_BUCKETS: usize = 24;

/// Log₂-scale histogram of task durations.
///
/// Bucket 0 holds durations under 1 µs; bucket `i >= 1` holds
/// `[2^(i-1), 2^i)` µs; the last bucket is open-ended (≈ 84 min and up).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimeHistogram {
    pub buckets: [u64; HIST_BUCKETS],
}

impl TimeHistogram {
    pub fn record(&mut self, seconds: f64) {
        self.buckets[Self::bucket_index(seconds)] += 1;
    }

    /// Bucket a duration falls into (NaN and negatives clamp to bucket 0).
    pub fn bucket_index(seconds: f64) -> usize {
        let us = seconds * 1e6;
        if us.is_nan() || us < 1.0 {
            return 0;
        }
        let exp = (us as u64).ilog2() as usize + 1;
        exp.min(HIST_BUCKETS - 1)
    }

    pub fn merge(&mut self, other: &TimeHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Aggregated timing of one kernel class ("potrf", "gemm", ...).
#[derive(Clone, Copy, Debug)]
pub struct KernelStats {
    pub kind: &'static str,
    pub count: u64,
    pub total_seconds: f64,
    pub min_seconds: f64,
    pub max_seconds: f64,
    pub histogram: TimeHistogram,
}

impl KernelStats {
    pub fn new(kind: &'static str) -> KernelStats {
        KernelStats {
            kind,
            count: 0,
            total_seconds: 0.0,
            min_seconds: f64::INFINITY,
            max_seconds: 0.0,
            histogram: TimeHistogram::default(),
        }
    }

    pub fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.total_seconds += seconds;
        self.min_seconds = self.min_seconds.min(seconds);
        self.max_seconds = self.max_seconds.max(seconds);
        self.histogram.record(seconds);
    }

    pub fn merge(&mut self, other: &KernelStats) {
        self.count += other.count;
        self.total_seconds += other.total_seconds;
        self.min_seconds = self.min_seconds.min(other.min_seconds);
        self.max_seconds = self.max_seconds.max(other.max_seconds);
        self.histogram.merge(&other.histogram);
    }

    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }
}

/// Ready-queue depth, sampled at every pop and push batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueDepthStats {
    pub samples: u64,
    pub sum: u64,
    pub max: usize,
}

impl QueueDepthStats {
    pub fn sample(&mut self, depth: usize) {
        self.samples += 1;
        self.sum += depth as u64;
        self.max = self.max.max(depth);
    }

    pub fn merge(&mut self, other: &QueueDepthStats) {
        self.samples += other.samples;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean sampled depth (0.0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// Per-worker execution counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    pub busy_seconds: f64,
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Times this worker parked waiting for the queue.
    pub parks: u64,
}

/// Bytes-on-wire census for one frame kind of the shard protocol
/// ("hello", "tile", ...). `bytes` counts full frames — the 5-byte
/// length/kind header plus the payload — in both directions, as seen from
/// the coordinator (the hub sees all traffic). The distsim projection
/// budgets with the same closed form, so measured and projected censuses
/// are directly comparable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    pub kind: &'static str,
    pub frames: u64,
    pub bytes: u64,
}

/// Work-stealing pool activity during a run: a delta of the `rayon` pool's
/// cumulative counters. `jobs` counts chunks executed by pool workers,
/// `inline_jobs` chunks the submitting thread ran while waiting, `steals`
/// deque-to-deque ticket thefts, `parks` worker sleeps on an empty pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    pub workers: usize,
    pub jobs: u64,
    pub inline_jobs: u64,
    pub steals: u64,
    pub parks: u64,
}

/// Everything the runtime observed about one graph execution.
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    pub wall_seconds: f64,
    pub tasks: usize,
    pub workers: usize,
    /// Per kernel class, sorted by descending total time.
    pub kernels: Vec<KernelStats>,
    pub queue_depth: QueueDepthStats,
    pub worker_stats: Vec<WorkerStats>,
    /// Precision conversions performed during the run (delta of the
    /// process-global [`crate::convert`] counters).
    pub conversions: ConversionCounts,
    /// Bytes-on-wire census per frame kind (sharded runs and distsim
    /// projections; empty for in-process executions).
    pub wire: Vec<WireStats>,
    /// Present when the schedule validator ran (and passed).
    pub validation: Option<ValidationSummary>,
    /// Present when intra-kernel parallel work ran on the shared
    /// work-stealing pool during the measured region.
    pub pool: Option<PoolCounters>,
}

impl MetricsReport {
    /// Accumulate another run's metrics into this one (e.g. to summarize
    /// all factorizations of an MLE optimization). Wall time, task counts,
    /// conversions, and validation censuses add; per-kernel and per-worker
    /// stats merge element-wise; worker count takes the maximum.
    pub fn merge(&mut self, other: &MetricsReport) {
        self.wall_seconds += other.wall_seconds;
        self.tasks += other.tasks;
        self.workers = self.workers.max(other.workers);
        for ok in &other.kernels {
            match self.kernels.iter_mut().find(|k| k.kind == ok.kind) {
                Some(k) => k.merge(ok),
                None => self.kernels.push(*ok),
            }
        }
        self.kernels
            .sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
        self.queue_depth.merge(&other.queue_depth);
        if self.worker_stats.len() < other.worker_stats.len() {
            self.worker_stats
                .resize(other.worker_stats.len(), WorkerStats::default());
        }
        for (w, ow) in self.worker_stats.iter_mut().zip(&other.worker_stats) {
            w.busy_seconds += ow.busy_seconds;
            w.tasks += ow.tasks;
            w.parks += ow.parks;
        }
        for ow in &other.wire {
            match self.wire.iter_mut().find(|w| w.kind == ow.kind) {
                Some(w) => {
                    w.frames += ow.frames;
                    w.bytes += ow.bytes;
                }
                None => self.wire.push(*ow),
            }
        }
        let c = &other.conversions;
        self.conversions.f64_to_f32 += c.f64_to_f32;
        self.conversions.f64_to_f16 += c.f64_to_f16;
        self.conversions.f32_to_f64 += c.f32_to_f64;
        self.conversions.f32_to_f16 += c.f32_to_f16;
        self.conversions.f16_to_f32 += c.f16_to_f32;
        self.conversions.f16_to_f64 += c.f16_to_f64;
        match (&mut self.validation, &other.validation) {
            (Some(a), Some(b)) => a.add(b),
            (None, Some(b)) => self.validation = Some(*b),
            _ => {}
        }
        match (&mut self.pool, &other.pool) {
            (Some(a), Some(b)) => {
                a.workers = a.workers.max(b.workers);
                a.jobs += b.jobs;
                a.inline_jobs += b.inline_jobs;
                a.steals += b.steals;
                a.parks += b.parks;
            }
            (None, Some(b)) => self.pool = Some(*b),
            _ => {}
        }
    }

    /// Serialize to a JSON object (schema documented in the repository
    /// README under "Metrics JSON"). Hand-rolled like
    /// [`crate::stats::chrome_trace_json`]; all values are finite.
    pub fn to_json(&self) -> String {
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let hist = k
                    .histogram
                    .buckets
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    concat!(
                        "{{\"kind\":\"{}\",\"count\":{},\"total_seconds\":{},",
                        "\"mean_seconds\":{},\"min_seconds\":{},\"max_seconds\":{},",
                        "\"histogram_log2us\":[{}]}}"
                    ),
                    k.kind,
                    k.count,
                    k.total_seconds,
                    k.mean_seconds(),
                    if k.count == 0 { 0.0 } else { k.min_seconds },
                    k.max_seconds,
                    hist
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let workers = self
            .worker_stats
            .iter()
            .enumerate()
            .map(|(w, s)| {
                format!(
                    "{{\"worker\":{},\"busy_seconds\":{},\"tasks\":{},\"parks\":{}}}",
                    w, s.busy_seconds, s.tasks, s.parks
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let wire = self
            .wire
            .iter()
            .map(|w| {
                format!(
                    "{{\"kind\":\"{}\",\"frames\":{},\"bytes\":{}}}",
                    w.kind, w.frames, w.bytes
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let c = &self.conversions;
        let validation = match &self.validation {
            Some(v) => format!(
                concat!(
                    "{{\"edges_checked\":{},\"raw_edges\":{},",
                    "\"war_edges\":{},\"waw_edges\":{},\"edges_skipped\":{}}}"
                ),
                v.edges_checked, v.raw_edges, v.war_edges, v.waw_edges, v.edges_skipped
            ),
            None => "null".to_string(),
        };
        let pool = match &self.pool {
            Some(p) => format!(
                concat!(
                    "{{\"workers\":{},\"jobs\":{},\"inline_jobs\":{},",
                    "\"steals\":{},\"parks\":{}}}"
                ),
                p.workers, p.jobs, p.inline_jobs, p.steals, p.parks
            ),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"wall_seconds\":{},\"tasks\":{},\"workers\":{},",
                "\"kernels\":[{}],",
                "\"queue_depth\":{{\"samples\":{},\"max\":{},\"mean\":{}}},",
                "\"worker_stats\":[{}],",
                "\"conversions\":{{\"f64_to_f32\":{},\"f64_to_f16\":{},\"f32_to_f64\":{},",
                "\"f32_to_f16\":{},\"f16_to_f32\":{},\"f16_to_f64\":{},\"total\":{},",
                "\"demotions\":{},\"promotions\":{}}},",
                "\"wire\":[{}],",
                "\"validation\":{},",
                "\"pool\":{}}}"
            ),
            self.wall_seconds,
            self.tasks,
            self.workers,
            kernels,
            self.queue_depth.samples,
            self.queue_depth.max,
            self.queue_depth.mean(),
            workers,
            c.f64_to_f32,
            c.f64_to_f16,
            c.f32_to_f64,
            c.f32_to_f16,
            c.f16_to_f32,
            c.f16_to_f64,
            c.total(),
            c.demotions(),
            c.promotions(),
            wire,
            validation,
            pool
        )
    }

    /// Parse a report back from its [`MetricsReport::to_json`] export.
    ///
    /// Missing fields default to zero/empty so the reader stays tolerant of
    /// schema growth; structurally invalid documents are an error. Kernel
    /// kinds are interned (the well-known names map to the static strings
    /// the runtime itself uses; unknown kinds leak a one-off allocation,
    /// which is fine for the report-analysis tools this feeds).
    pub fn from_json(input: &str) -> Result<MetricsReport, crate::json::JsonError> {
        use crate::json::{parse_json, JsonValue};

        fn num(v: Option<&JsonValue>) -> f64 {
            v.and_then(JsonValue::as_f64).unwrap_or(0.0)
        }
        fn count(v: Option<&JsonValue>) -> u64 {
            v.and_then(JsonValue::as_u64).unwrap_or(0)
        }
        fn intern_kind(name: &str) -> &'static str {
            const KNOWN: &[&str] = &[
                "potrf",
                "trsm",
                "syrk",
                "gemm",
                "generate",
                "compress",
                "convert",
                "solve",
                "batch_solve",
                "batch_size",
                "request",
                "shed",
                "deadline",
                "evict",
                "even",
                "odd",
                "hello",
                "tile",
                "task",
                "done",
                "shutdown",
                "bye",
                "join",
                "heartbeat",
                "assign",
                "worker_join",
                "worker_death",
                "panel_replay",
                "standby_promote",
            ];
            KNOWN
                .iter()
                .find(|k| **k == name)
                .copied()
                .unwrap_or_else(|| Box::leak(name.to_string().into_boxed_str()))
        }

        let doc = parse_json(input)?;
        let mut report = MetricsReport {
            wall_seconds: num(doc.get("wall_seconds")),
            tasks: count(doc.get("tasks")) as usize,
            workers: count(doc.get("workers")) as usize,
            ..MetricsReport::default()
        };

        for k in doc
            .get("kernels")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
        {
            let kind = intern_kind(k.get("kind").and_then(JsonValue::as_str).unwrap_or("?"));
            let mut ks = KernelStats::new(kind);
            ks.count = count(k.get("count"));
            ks.total_seconds = num(k.get("total_seconds"));
            ks.max_seconds = num(k.get("max_seconds"));
            ks.min_seconds = if ks.count == 0 {
                f64::INFINITY
            } else {
                num(k.get("min_seconds"))
            };
            if let Some(buckets) = k.get("histogram_log2us").and_then(JsonValue::as_array) {
                for (slot, b) in ks.histogram.buckets.iter_mut().zip(buckets) {
                    *slot = b.as_u64().unwrap_or(0);
                }
            }
            report.kernels.push(ks);
        }

        if let Some(q) = doc.get("queue_depth") {
            report.queue_depth.samples = count(q.get("samples"));
            report.queue_depth.max = count(q.get("max")) as usize;
            // `sum` is reconstructed from the exported mean.
            report.queue_depth.sum =
                (num(q.get("mean")) * report.queue_depth.samples as f64).round() as u64;
        }

        for w in doc
            .get("worker_stats")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
        {
            report.worker_stats.push(WorkerStats {
                busy_seconds: num(w.get("busy_seconds")),
                tasks: count(w.get("tasks")),
                parks: count(w.get("parks")),
            });
        }

        if let Some(c) = doc.get("conversions") {
            report.conversions = ConversionCounts {
                f64_to_f32: count(c.get("f64_to_f32")),
                f64_to_f16: count(c.get("f64_to_f16")),
                f32_to_f64: count(c.get("f32_to_f64")),
                f32_to_f16: count(c.get("f32_to_f16")),
                f16_to_f32: count(c.get("f16_to_f32")),
                f16_to_f64: count(c.get("f16_to_f64")),
            };
        }

        for w in doc.get("wire").and_then(JsonValue::as_array).unwrap_or(&[]) {
            report.wire.push(WireStats {
                kind: intern_kind(w.get("kind").and_then(JsonValue::as_str).unwrap_or("?")),
                frames: count(w.get("frames")),
                bytes: count(w.get("bytes")),
            });
        }

        match doc.get("validation") {
            Some(v) if !v.is_null() => {
                report.validation = Some(ValidationSummary {
                    edges_checked: count(v.get("edges_checked")),
                    raw_edges: count(v.get("raw_edges")),
                    war_edges: count(v.get("war_edges")),
                    waw_edges: count(v.get("waw_edges")),
                    edges_skipped: count(v.get("edges_skipped")),
                });
            }
            _ => {}
        }
        match doc.get("pool") {
            Some(p) if !p.is_null() => {
                report.pool = Some(PoolCounters {
                    workers: count(p.get("workers")) as usize,
                    jobs: count(p.get("jobs")),
                    inline_jobs: count(p.get("inline_jobs")),
                    steals: count(p.get("steals")),
                    parks: count(p.get("parks")),
                });
            }
            _ => {}
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(TimeHistogram::bucket_index(0.0), 0);
        assert_eq!(TimeHistogram::bucket_index(-1.0), 0);
        assert_eq!(TimeHistogram::bucket_index(f64::NAN), 0);
        assert_eq!(TimeHistogram::bucket_index(0.9e-6), 0);
        assert_eq!(TimeHistogram::bucket_index(1.0e-6), 1); // [1, 2) µs
        assert_eq!(TimeHistogram::bucket_index(1.9e-6), 1);
        assert_eq!(TimeHistogram::bucket_index(2.0e-6), 2); // [2, 4) µs
        assert_eq!(TimeHistogram::bucket_index(1.0e-3), 10); // [512, 1024) µs
        assert_eq!(TimeHistogram::bucket_index(1e9), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_merges() {
        let mut a = TimeHistogram::default();
        a.record(1.5e-6);
        a.record(3e-6);
        let mut b = TimeHistogram::default();
        b.record(1.2e-6);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets[1], 2);
        assert_eq!(a.buckets[2], 1);
    }

    #[test]
    fn kernel_stats_track_extremes() {
        let mut k = KernelStats::new("gemm");
        k.record(2e-3);
        k.record(1e-3);
        k.record(5e-3);
        assert_eq!(k.count, 3);
        assert!((k.total_seconds - 8e-3).abs() < 1e-12);
        assert_eq!(k.min_seconds, 1e-3);
        assert_eq!(k.max_seconds, 5e-3);
        assert!((k.mean_seconds() - 8e-3 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_kernel_stats_have_no_nans() {
        let k = KernelStats::new("potrf");
        assert_eq!(k.mean_seconds(), 0.0);
        let mut m = MetricsReport::default();
        m.kernels.push(k);
        let json = m.to_json();
        assert!(!json.contains("NaN"));
        assert!(!json.contains("inf"));
        assert!(json.contains("\"min_seconds\":0"));
    }

    #[test]
    fn queue_depth_mean_is_sample_weighted() {
        let mut q = QueueDepthStats::default();
        q.sample(2);
        q.sample(6);
        assert_eq!(q.samples, 2);
        assert_eq!(q.max, 6);
        assert_eq!(q.mean(), 4.0);
        assert_eq!(QueueDepthStats::default().mean(), 0.0);
    }

    #[test]
    fn json_has_expected_shape() {
        let mut m = MetricsReport {
            wall_seconds: 0.5,
            tasks: 3,
            workers: 2,
            worker_stats: vec![WorkerStats::default(); 2],
            validation: Some(ValidationSummary {
                edges_checked: 4,
                raw_edges: 2,
                war_edges: 1,
                waw_edges: 1,
                edges_skipped: 3,
            }),
            ..MetricsReport::default()
        };
        let mut k = KernelStats::new("trsm");
        k.record(1e-3);
        m.kernels.push(k);
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"kind\":\"trsm\""));
        assert!(json.contains("\"edges_checked\":4"));
        assert!(json.contains("\"worker\":1"));
        assert!(json.contains("\"histogram_log2us\":["));
        // Balanced braces — cheap structural sanity for the hand-rolled JSON.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn merge_accumulates_across_runs() {
        let mk = |kind, secs: f64, tasks| {
            let mut k = KernelStats::new(kind);
            k.record(secs);
            MetricsReport {
                wall_seconds: secs,
                tasks,
                workers: 2,
                kernels: vec![k],
                worker_stats: vec![
                    WorkerStats {
                        busy_seconds: secs,
                        tasks: tasks as u64,
                        parks: 1,
                    },
                    WorkerStats::default(),
                ],
                validation: Some(ValidationSummary {
                    edges_checked: 3,
                    ..Default::default()
                }),
                ..MetricsReport::default()
            }
        };
        let mut a = mk("gemm", 1.0, 10);
        a.merge(&mk("gemm", 2.0, 5));
        a.merge(&mk("trsm", 0.5, 1));
        assert_eq!(a.tasks, 16);
        assert!((a.wall_seconds - 3.5).abs() < 1e-12);
        assert_eq!(a.kernels.len(), 2);
        let gemm = a.kernels.iter().find(|k| k.kind == "gemm").unwrap();
        assert_eq!(gemm.count, 2);
        assert_eq!(a.kernels[0].kind, "gemm", "sorted by total time");
        assert_eq!(a.worker_stats[0].parks, 3);
        assert_eq!(a.validation.unwrap().edges_checked, 9);
    }

    #[test]
    fn json_validation_null_when_not_run() {
        let m = MetricsReport::default();
        assert!(m.to_json().contains("\"validation\":null"));
        assert!(m.to_json().contains("\"pool\":null"));
    }

    #[test]
    fn pool_counters_merge_and_survive_json() {
        let mk = |jobs, steals| MetricsReport {
            pool: Some(PoolCounters {
                workers: 4,
                jobs,
                inline_jobs: 1,
                steals,
                parks: 2,
            }),
            ..MetricsReport::default()
        };
        let mut a = MetricsReport::default();
        a.merge(&mk(10, 3)); // None + Some adopts
        a.merge(&mk(5, 1)); // Some + Some sums counters, maxes workers
        let p = a.pool.unwrap();
        assert_eq!(p.workers, 4);
        assert_eq!(p.jobs, 15);
        assert_eq!(p.inline_jobs, 2);
        assert_eq!(p.steals, 4);
        assert_eq!(p.parks, 4);
        let back = MetricsReport::from_json(&a.to_json()).expect("parse own export");
        assert_eq!(back.pool, a.pool);
        // Reports written before the pool existed parse with pool = None.
        let legacy = MetricsReport::default()
            .to_json()
            .replace(",\"pool\":null", "");
        assert!(MetricsReport::from_json(&legacy)
            .expect("legacy")
            .pool
            .is_none());
    }

    #[test]
    fn json_export_round_trips_through_from_json() {
        let mut m = MetricsReport {
            wall_seconds: 2.75,
            tasks: 12,
            workers: 3,
            worker_stats: vec![
                WorkerStats {
                    busy_seconds: 1.5,
                    tasks: 8,
                    parks: 2,
                },
                WorkerStats::default(),
                WorkerStats {
                    busy_seconds: 0.25,
                    tasks: 4,
                    parks: 0,
                },
            ],
            validation: Some(ValidationSummary {
                edges_checked: 10,
                raw_edges: 6,
                war_edges: 3,
                waw_edges: 1,
                edges_skipped: 7,
            }),
            pool: Some(PoolCounters {
                workers: 4,
                jobs: 120,
                inline_jobs: 17,
                steals: 9,
                parks: 33,
            }),
            ..MetricsReport::default()
        };
        m.conversions.f64_to_f32 = 9;
        m.wire.push(WireStats {
            kind: "tile",
            frames: 40,
            bytes: 123456,
        });
        m.wire.push(WireStats {
            kind: "task",
            frames: 55,
            bytes: 1925,
        });
        m.queue_depth.sample(2);
        m.queue_depth.sample(4);
        let mut gemm = KernelStats::new("gemm");
        gemm.record(1e-3);
        gemm.record(3e-3);
        m.kernels.push(gemm);
        let mut custom = KernelStats::new("batch_size");
        custom.record(8e-6);
        m.kernels.push(custom);

        let back = MetricsReport::from_json(&m.to_json()).expect("parse own export");
        assert_eq!(back.wall_seconds, m.wall_seconds);
        assert_eq!(back.tasks, 12);
        assert_eq!(back.workers, 3);
        assert_eq!(back.kernels.len(), 2);
        let g = back.kernels.iter().find(|k| k.kind == "gemm").unwrap();
        assert_eq!(g.count, 2);
        assert_eq!(g.total_seconds, 4e-3);
        assert_eq!(g.min_seconds, 1e-3);
        assert_eq!(g.max_seconds, 3e-3);
        assert_eq!(g.histogram, m.kernels[0].histogram);
        assert_eq!(back.queue_depth.samples, 2);
        assert_eq!(back.queue_depth.max, 4);
        assert_eq!(back.queue_depth.mean(), 3.0);
        assert_eq!(back.worker_stats.len(), 3);
        assert_eq!(back.worker_stats[0].tasks, 8);
        assert_eq!(back.conversions.f64_to_f32, 9);
        assert_eq!(back.wire, m.wire);
        assert_eq!(back.validation, m.validation);
        assert_eq!(back.pool, m.pool);
        // A reparsed report can merge with a live one (kind interning gives
        // back pointer-comparable statics for known kinds).
        let mut live = MetricsReport::default();
        let mut k = KernelStats::new("gemm");
        k.record(5e-3);
        live.kernels.push(k);
        live.merge(&back);
        assert_eq!(
            live.kernels
                .iter()
                .find(|k| k.kind == "gemm")
                .unwrap()
                .count,
            3
        );
    }

    #[test]
    fn from_json_rejects_garbage_and_tolerates_missing_fields() {
        assert!(MetricsReport::from_json("not json").is_err());
        let minimal = MetricsReport::from_json("{}").unwrap();
        assert_eq!(minimal.tasks, 0);
        assert!(minimal.kernels.is_empty());
        assert!(minimal.wire.is_empty());
        assert!(minimal.validation.is_none());
    }

    #[test]
    fn wire_census_merges_by_kind() {
        let mk = |frames, bytes| MetricsReport {
            wire: vec![WireStats {
                kind: "tile",
                frames,
                bytes,
            }],
            ..MetricsReport::default()
        };
        let mut a = mk(10, 1000);
        a.merge(&mk(5, 500));
        a.merge(&MetricsReport {
            wire: vec![WireStats {
                kind: "done",
                frames: 3,
                bytes: 93,
            }],
            ..MetricsReport::default()
        });
        assert_eq!(a.wire.len(), 2);
        let tile = a.wire.iter().find(|w| w.kind == "tile").unwrap();
        assert_eq!((tile.frames, tile.bytes), (15, 1500));
    }
}

//! Distributed-memory discrete-event simulation of a task DAG.
//!
//! The paper's headline figures run on 1k–48k Fugaku nodes. We reproduce
//! their *shape* by replaying the very same tile-Cholesky DAG against a
//! machine model: tiles are distributed 2D-block-cyclically over nodes
//! (PaRSEC's default for dense factorizations), a task executes on the node
//! owning its output tile, and consuming a remote predecessor's output pays
//! `latency + bytes/bandwidth`. Greedy in-order list scheduling over
//! per-node core pools approximates the dynamic runtime's behaviour well at
//! these task counts.

use crate::metrics::{KernelStats, MetricsReport, WorkerStats};

/// Machine model for the simulation (defaults modeled on an A64FX node,
/// see `xgs-perfmodel` for the calibrated constants).
#[derive(Clone, Copy, Debug)]
pub struct MachineSpec {
    pub nodes: usize,
    pub cores_per_node: usize,
    /// Network injection bandwidth per node, bytes/s.
    pub net_bandwidth: f64,
    /// Per-message latency, seconds.
    pub net_latency: f64,
}

/// One task of the simulated DAG. Tasks must be listed in topological
/// order (every predecessor index smaller than the task's own index).
#[derive(Clone, Debug)]
pub struct SimTask {
    /// Kernel class ("potrf", "trsm", ...) — groups the task into the
    /// per-kernel census of [`simulate_with_metrics`].
    pub kind: &'static str,
    /// Execution time on one core, seconds.
    pub cost: f64,
    /// Node that executes the task (owner of its output tile).
    pub owner: usize,
    /// Predecessors: `(task index, message bytes if remote)`.
    pub preds: Vec<(usize, f64)>,
}

/// Simulation outcome.
#[derive(Clone, Copy, Debug)]
pub struct SimResult {
    /// Simulated end-to-end time, seconds.
    pub makespan: f64,
    /// Total bytes crossing node boundaries.
    pub comm_bytes: f64,
    /// Sum of task costs (compute seconds).
    pub busy_seconds: f64,
    /// busy / (makespan * nodes * cores): parallel efficiency.
    pub efficiency: f64,
}

/// Owner of tile `(i, j)` under a `p x q` 2D block-cyclic distribution.
#[inline]
pub fn block_cyclic_owner(i: usize, j: usize, p: usize, q: usize) -> usize {
    (i % p) * q + (j % q)
}

/// Run the event-driven replay.
pub fn simulate(tasks: &[SimTask], machine: &MachineSpec) -> SimResult {
    assert!(machine.nodes >= 1 && machine.cores_per_node >= 1);
    let mut finish = vec![0.0f64; tasks.len()];
    // Per-node core pool: sorted free times (small vectors; cores/node is
    // bounded, we keep a simple min-select).
    let mut cores: Vec<Vec<f64>> = vec![vec![0.0; machine.cores_per_node]; machine.nodes];
    let mut comm_bytes = 0.0f64;
    let mut busy = 0.0f64;
    let mut makespan = 0.0f64;

    for (idx, t) in tasks.iter().enumerate() {
        assert!(t.owner < machine.nodes, "owner {} out of range", t.owner);
        let mut ready = 0.0f64;
        for &(p, bytes) in &t.preds {
            debug_assert!(p < idx, "tasks must be topologically ordered");
            let mut avail = finish[p];
            if bytes > 0.0 {
                avail += machine.net_latency + bytes / machine.net_bandwidth;
                comm_bytes += bytes;
            }
            ready = ready.max(avail);
        }
        // Earliest-free core on the owner node.
        let pool = &mut cores[t.owner];
        let (core_idx, &free_at) = pool
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let start = ready.max(free_at);
        let end = start + t.cost;
        pool[core_idx] = end;
        finish[idx] = end;
        busy += t.cost;
        makespan = makespan.max(end);
    }

    let denom = makespan * (machine.nodes * machine.cores_per_node) as f64;
    SimResult {
        makespan,
        comm_bytes,
        busy_seconds: busy,
        efficiency: if denom > 0.0 { busy / denom } else { 1.0 },
    }
}

/// [`simulate`], additionally aggregating a [`MetricsReport`] in the same
/// JSON schema the shared-memory executor exports: per-kernel counts and
/// (simulated) time histograms, plus one [`WorkerStats`] entry per modeled
/// node. Queue depth and conversion counters stay zero — the event engine
/// has neither a ready queue nor live data — and validation is `None`
/// (the DAG replay is ordered by construction).
pub fn simulate_with_metrics(
    tasks: &[SimTask],
    machine: &MachineSpec,
) -> (SimResult, MetricsReport) {
    let result = simulate(tasks, machine);
    let mut kernels: Vec<KernelStats> = Vec::new();
    let mut nodes = vec![WorkerStats::default(); machine.nodes];
    for t in tasks {
        match kernels.iter_mut().find(|k| k.kind == t.kind) {
            Some(k) => k.record(t.cost),
            None => {
                let mut k = KernelStats::new(t.kind);
                k.record(t.cost);
                kernels.push(k);
            }
        }
        nodes[t.owner].busy_seconds += t.cost;
        nodes[t.owner].tasks += 1;
    }
    kernels.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
    let metrics = MetricsReport {
        wall_seconds: result.makespan,
        tasks: tasks.len(),
        workers: machine.nodes,
        kernels,
        worker_stats: nodes,
        ..MetricsReport::default()
    };
    (result, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(nodes: usize, cores: usize) -> MachineSpec {
        MachineSpec {
            nodes,
            cores_per_node: cores,
            net_bandwidth: 1.0e9,
            net_latency: 1.0e-6,
        }
    }

    #[test]
    fn serial_chain_on_one_core() {
        let tasks: Vec<SimTask> = (0..10)
            .map(|i| SimTask {
                kind: "task",
                cost: 1.0,
                owner: 0,
                preds: if i == 0 { vec![] } else { vec![(i - 1, 0.0)] },
            })
            .collect();
        let r = simulate(&tasks, &machine(1, 1));
        assert_eq!(r.makespan, 10.0);
        assert!((r.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_fan_scales_with_cores() {
        let tasks: Vec<SimTask> = (0..32)
            .map(|_| SimTask {
                kind: "task",
                cost: 1.0,
                owner: 0,
                preds: vec![],
            })
            .collect();
        let r1 = simulate(&tasks, &machine(1, 1));
        let r8 = simulate(&tasks, &machine(1, 8));
        assert_eq!(r1.makespan, 32.0);
        assert_eq!(r8.makespan, 4.0);
    }

    #[test]
    fn remote_edges_pay_communication() {
        // Task 1 on node 1 consumes 1 GB from task 0 on node 0.
        let tasks = vec![
            SimTask {
                kind: "task",
                cost: 1.0,
                owner: 0,
                preds: vec![],
            },
            SimTask {
                kind: "task",
                cost: 1.0,
                owner: 1,
                preds: vec![(0, 1.0e9)],
            },
        ];
        let r = simulate(&tasks, &machine(2, 1));
        // 1s compute + 1s transfer + latency + 1s compute.
        assert!((r.makespan - 3.0).abs() < 1e-3, "makespan {}", r.makespan);
        assert_eq!(r.comm_bytes, 1.0e9);

        // Same DAG colocated: no transfer.
        let tasks_local = vec![
            SimTask {
                kind: "task",
                cost: 1.0,
                owner: 0,
                preds: vec![],
            },
            SimTask {
                kind: "task",
                cost: 1.0,
                owner: 0,
                preds: vec![(0, 0.0)],
            },
        ];
        let rl = simulate(&tasks_local, &machine(2, 1));
        assert!((rl.makespan - 2.0).abs() < 1e-9);
        assert_eq!(rl.comm_bytes, 0.0);
    }

    #[test]
    fn more_nodes_reduce_makespan_until_critical_path() {
        // Two waves of 64 independent tasks with a barrier task between.
        let mut tasks = Vec::new();
        for i in 0..64 {
            tasks.push(SimTask {
                kind: "even",
                cost: 1.0,
                owner: i % 4,
                preds: vec![],
            });
        }
        tasks.push(SimTask {
            kind: "task",
            cost: 0.0,
            owner: 0,
            preds: (0..64).map(|i| (i, 0.0)).collect(),
        });
        for i in 0..64 {
            tasks.push(SimTask {
                kind: "odd",
                cost: 1.0,
                owner: i % 4,
                preds: vec![(64, 0.0)],
            });
        }
        let r2 = simulate(&tasks, &machine(4, 2));
        let r8 = simulate(&tasks, &machine(4, 8));
        assert!(r8.makespan < r2.makespan);
        // Lower bound: 2 waves of 16 tasks per node / 8 cores = 2+2.
        assert!(r8.makespan >= 4.0 - 1e-9);
    }

    #[test]
    fn metrics_census_matches_the_dag() {
        let tasks = vec![
            SimTask {
                kind: "even",
                cost: 2.0,
                owner: 0,
                preds: vec![],
            },
            SimTask {
                kind: "odd",
                cost: 1.0,
                owner: 1,
                preds: vec![(0, 0.0)],
            },
            SimTask {
                kind: "even",
                cost: 3.0,
                owner: 0,
                preds: vec![(1, 0.0)],
            },
        ];
        let (r, m) = simulate_with_metrics(&tasks, &machine(2, 1));
        assert_eq!(m.tasks, 3);
        assert_eq!(m.workers, 2);
        assert_eq!(m.wall_seconds, r.makespan);
        assert_eq!(m.kernels.len(), 2);
        // Sorted by total time descending: "even" (5s, 2 tasks) first.
        assert_eq!(m.kernels[0].kind, "even");
        assert_eq!(m.kernels[0].count, 2);
        assert!((m.kernels[0].total_seconds - 5.0).abs() < 1e-12);
        assert_eq!(m.kernels[1].kind, "odd");
        assert_eq!(m.kernels[1].count, 1);
        assert_eq!(m.worker_stats.len(), 2);
        assert!((m.worker_stats[0].busy_seconds - 5.0).abs() < 1e-12);
        assert_eq!(m.worker_stats[1].tasks, 1);
        // The export round-trips through the shared JSON schema.
        let parsed = MetricsReport::from_json(&m.to_json()).expect("parses");
        assert_eq!(parsed.tasks, 3);
        assert_eq!(parsed.kernels.len(), 2);
    }

    #[test]
    fn block_cyclic_covers_all_nodes_evenly() {
        let (p, q) = (4, 3);
        let mut counts = vec![0usize; p * q];
        for i in 0..24 {
            for j in 0..24 {
                counts[block_cyclic_owner(i, j, p, q)] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 24 * 24 / (p * q)));
    }

    #[test]
    fn single_process_grid_owns_every_tile() {
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(block_cyclic_owner(i, j, 1, 1), 0);
            }
        }
    }

    #[test]
    fn rectangular_grid_is_row_major_and_periodic() {
        // p = 2, q = 3: owner = (i mod 2)·3 + (j mod 3), so process ids
        // run row-major over the 2×3 grid and tile (i+2, j+3) wraps back
        // onto the same owner.
        assert_eq!(block_cyclic_owner(0, 0, 2, 3), 0);
        assert_eq!(block_cyclic_owner(0, 4, 2, 3), 1);
        assert_eq!(block_cyclic_owner(1, 2, 2, 3), 5);
        assert_eq!(block_cyclic_owner(3, 5, 2, 3), 5);
        for i in 0..12 {
            for j in 0..12 {
                assert_eq!(
                    block_cyclic_owner(i, j, 2, 3),
                    block_cyclic_owner(i + 2, j + 3, 2, 3)
                );
            }
        }
    }

    #[test]
    fn tile_grid_smaller_than_process_grid_leaves_processes_idle() {
        // A 2×2 tile grid over 3×3 processes: the cyclic map never wraps,
        // so only the processes whose coordinates exist in the tile grid
        // ever own anything — exactly {0, 1, 3, 4}.
        let mut owned = vec![false; 9];
        for i in 0..2 {
            for j in 0..2 {
                owned[block_cyclic_owner(i, j, 3, 3)] = true;
            }
        }
        assert_eq!(
            owned,
            vec![true, true, false, true, true, false, false, false, false]
        );
    }

    #[test]
    fn cholesky_owner_census_sums_to_the_full_dag() {
        // Every task of the right-looking tile Cholesky runs on the owner
        // of its output tile; the per-worker census must account for every
        // task of the DAG (closed form: nt potrf + nt(nt-1)/2 trsm +
        // nt(nt²-1)/6 updates) with no worker idle on this 7×(2×3) shape.
        let (nt, p, q) = (7usize, 2, 3);
        let mut owners = Vec::new();
        for k in 0..nt {
            owners.push(block_cyclic_owner(k, k, p, q));
            for i in k + 1..nt {
                owners.push(block_cyclic_owner(i, k, p, q));
            }
            for i in k + 1..nt {
                for j in k + 1..=i {
                    owners.push(block_cyclic_owner(i, j, p, q));
                }
            }
        }
        let census = crate::shard::task_census(owners, p * q);
        let total = nt + nt * (nt - 1) / 2 + nt * (nt * nt - 1) / 6;
        assert_eq!(census.iter().sum::<u64>() as usize, total);
        assert!(census.iter().all(|&c| c > 0), "{census:?}");
    }
}

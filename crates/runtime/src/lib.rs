//! A PaRSEC-style dynamic task-based runtime.
//!
//! The paper relies on PaRSEC to (a) schedule the heterogeneous tasks of the
//! MP+dense/TLR Cholesky asynchronously, (b) convert operand precisions
//! on demand as data flows between tasks of different formats, and (c)
//! absorb the load imbalance the adaptive tile formats create. This crate
//! reproduces those roles:
//!
//! * [`graph::TaskGraph`] — tasks declare read/write accesses on abstract
//!   data handles; dependencies (RAW/WAR/WAW) are inferred in insertion
//!   order, exactly like a superscalar/dataflow runtime unrolling a DAG.
//! * [`exec`] — a multi-worker executor with critical-path priorities and
//!   per-worker execution traces (busy time, task counts, imbalance).
//! * [`convert`] — global counters for the on-demand precision conversions
//!   ("PaRSEC will move and convert on-the-fly the operands ... to match
//!   the precision at the receiver side").
//! * [`distsim`] — a distributed-memory discrete-event simulator: the same
//!   DAG, mapped 2D-block-cyclically over `P` nodes with a machine model,
//!   yields the simulated makespans behind the Fugaku-scale figures.

pub mod convert;
pub mod distsim;
pub mod exec;
pub mod graph;
pub mod json;
pub mod metrics;
pub mod race;
pub mod shard;
pub mod stats;
pub mod validate;

pub use convert::{conversion_counts, count_conversion, reset_conversion_counts, ConversionCounts};
pub use distsim::{
    block_cyclic_owner, simulate, simulate_with_metrics, MachineSpec, SimResult, SimTask,
};
pub use exec::{
    execute, execute_opts, execute_with_policy, precheck_env_default, ExecOptions, ExecReport,
    SchedPolicy,
};
pub use graph::{Access, AccessMode, DataId, TaskGraph, TaskId};
pub use json::{escape_json, parse_json, JsonError, JsonValue};
pub use metrics::{
    KernelStats, MetricsReport, PoolCounters, QueueDepthStats, TimeHistogram, WireStats,
    WorkerStats,
};
pub use race::{race_count, take_races, Race};
pub use shard::{
    read_frame, task_census, write_frame, FrameError, WireReader, WireWriter, FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
};
pub use stats::{chrome_trace_json, kind_summary, TraceEvent};
pub use validate::{
    check_schedule, crosscheck_static_edges, derived_edges, Hazard, TaskOrder, ValidationSummary,
    Violation, UNRECORDED,
};

/// The one shared logical-core probe.
///
/// Every layer that sizes itself by the machine — the executor's default
/// worker count, the shard workers' JOIN core advertisement, the bench
/// defaults, and (via the same `num_cpus` vendor shim) the `rayon` pool —
/// must go through this helper so they all advertise the same number.
/// Probing `available_parallelism` or `num_cpus::get()` directly anywhere
/// else is flagged by the `no-raw-parallelism-probe` lint.
pub fn logical_cores() -> usize {
    // xgs-lint: allow(no-raw-parallelism-probe): this is the shared helper itself
    num_cpus::get()
}

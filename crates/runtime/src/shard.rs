//! Length-prefixed binary framing for the multi-process sharded backend.
//!
//! The paper's distributed runs move tiles between node-owners over the
//! network; our sharded tile Cholesky does the same over loopback TCP. This
//! module owns the transport-level concerns, independent of what the frames
//! carry: a bounded length-prefixed frame format (the binary sibling of the
//! server crate's bounded line reader — a peer can never make us buffer
//! unboundedly, and a half-written frame is detected, not waited on
//! forever), little-endian field encode/decode helpers, and the ownership
//! census used to prove no DAG task is orphaned or double-owned.
//!
//! Wire format of one frame:
//!
//! ```text
//! [u32 LE payload length][u8 frame kind][payload bytes]
//! ```
//!
//! The payload length excludes the 5-byte header and is capped at
//! [`MAX_FRAME_BYTES`]; a peer announcing more is a protocol error and the
//! connection is dropped. Frame kinds are defined by the layer above
//! (`xgs-cholesky::shard`); this module treats them as opaque.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Hard cap on a frame payload. Tiles are `nb x nb` FP64 buffers; 64 MiB
/// covers tiles up to ~2896², far beyond any tile size the tile planner
/// emits, while bounding what a misbehaving peer can make us allocate.
pub const MAX_FRAME_BYTES: usize = 1 << 26;

/// Bytes of the fixed frame header preceding every payload. Byte censuses
/// (planned or measured) count full frames, i.e. header plus payload.
pub const FRAME_HEADER_BYTES: usize = 5;

/// Poll interval for interruptible reads: how long a blocked read waits
/// before re-checking the stop flag (mirrors the server's `READ_POLL`).
pub const READ_POLL: Duration = Duration::from_millis(50);

/// Transport-level failure reading or writing a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF at a frame boundary (peer closed in an orderly way).
    Closed,
    /// EOF in the middle of a frame: the peer died mid-write.
    Truncated { expected: usize, got: usize },
    /// Peer announced a payload larger than [`MAX_FRAME_BYTES`].
    TooLarge { len: usize },
    /// No bytes arrived within the caller's stall timeout while a frame
    /// was expected or partially read.
    Stalled,
    /// The caller raised the stop flag while a read was in progress.
    Stopped,
    /// Structurally invalid payload (bad tag, short buffer, ...).
    Malformed(&'static str),
    /// Underlying socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => f.write_str("connection closed"),
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: got {got} of {expected} bytes")
            }
            FrameError::TooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}")
            }
            FrameError::Stalled => f.write_str("peer stalled mid-frame"),
            FrameError::Stopped => f.write_str("read interrupted by stop flag"),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Write one frame (header + payload) and flush.
///
/// Race model: a successful send is a release on the per-kind frame
/// channel — everything the sender did before the frame happens-before
/// whatever a receiver of the same kind does after reading one. The
/// channel is coarse (keyed by kind, not by stream), so it can only *add*
/// happens-before edges, never invent a race; and it is process-local, so
/// frames crossing to a real peer process simply leave the model.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4] = kind;
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    crate::race::release(crate::race::SPACE_FRAME, 0, kind as u64);
    Ok(())
}

/// Fill `buf` from the stream, polling every [`READ_POLL`] so the read can
/// be interrupted. `eof_ok_at_start`: a clean EOF before the first byte is
/// reported as [`FrameError::Closed`] instead of `Truncated`.
///
/// * `stall` — give up if no byte arrives for this long (`None` = wait
///   forever; the peer legitimately idles between messages).
/// * `stop` — abandon the read when this flag rises (the frame position is
///   lost; callers drop the connection afterwards).
///
/// The stream's read timeout is set to [`READ_POLL`] for the duration of
/// the call (and is how the polling works); callers should not rely on
/// their own read-timeout setting surviving.
fn read_exact_polled(
    stream: &mut TcpStream,
    buf: &mut [u8],
    eof_ok_at_start: bool,
    stall: Option<Duration>,
    stop: Option<&AtomicBool>,
) -> Result<(), FrameError> {
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut filled = 0usize;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok_at_start {
                    return Err(FrameError::Closed);
                }
                return Err(FrameError::Truncated {
                    expected: buf.len(),
                    got: filled,
                });
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if let Some(flag) = stop {
                    if flag.load(Ordering::Acquire) {
                        return Err(FrameError::Stopped);
                    }
                }
                if let Some(limit) = stall {
                    if last_progress.elapsed() >= limit {
                        return Err(FrameError::Stalled);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame, returning `(kind, payload)`.
///
/// A clean close at a frame boundary is [`FrameError::Closed`]; a close or
/// stall mid-frame is an error carrying how far the frame got — exactly the
/// bounded-reader discipline of the JSON server, transplanted to binary.
pub fn read_frame(
    stream: &mut TcpStream,
    stall: Option<Duration>,
    stop: Option<&AtomicBool>,
) -> Result<(u8, Vec<u8>), FrameError> {
    let mut header = [0u8; 5];
    read_exact_polled(stream, &mut header, true, stall, stop)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { len });
    }
    let mut payload = vec![0u8; len];
    read_exact_polled(stream, &mut payload, false, stall, stop)?;
    // Acquire half of the per-kind frame channel (see `write_frame`).
    crate::race::acquire(crate::race::SPACE_FRAME, 0, header[4] as u64);
    Ok((header[4], payload))
}

/// Little-endian payload builder.
#[derive(Default)]
pub struct WireWriter {
    pub buf: Vec<u8>,
}

impl WireWriter {
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Exact bit pattern — the transport must never perturb tile values,
    /// the equivalence suite asserts factors bitwise.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.put_f64(v);
        }
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Little-endian payload cursor; every getter fails cleanly on truncation
/// instead of panicking (payloads come off the wire).
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(FrameError::Malformed("payload shorter than declared"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn get_f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_f64s(&mut self, n: usize) -> Result<Vec<f64>, FrameError> {
        let bytes = self.take(n.checked_mul(8).ok_or(FrameError::Malformed(
            "element count overflows payload length",
        ))?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                f64::from_bits(u64::from_le_bytes([
                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                ]))
            })
            .collect())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Per-worker task counts for a DAG whose tasks are owned by
/// `owners` (one entry per task). Panics if an owner is out of range —
/// an out-of-range owner *is* an orphaned task.
pub fn task_census(owners: impl IntoIterator<Item = usize>, workers: usize) -> Vec<u64> {
    let mut census = vec![0u64; workers];
    for o in owners {
        census[o] += 1;
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn frame_round_trips_over_loopback() {
        let (mut tx, mut rx) = pair();
        write_frame(&mut tx, 7, b"hello tiles").unwrap();
        write_frame(&mut tx, 0, b"").unwrap();
        let (kind, payload) = read_frame(&mut rx, Some(Duration::from_secs(2)), None).unwrap();
        assert_eq!(kind, 7);
        assert_eq!(payload, b"hello tiles");
        let (kind, payload) = read_frame(&mut rx, Some(Duration::from_secs(2)), None).unwrap();
        assert_eq!(kind, 0);
        assert!(payload.is_empty());
    }

    #[test]
    fn clean_close_is_closed_mid_frame_is_truncated() {
        let (tx, mut rx) = pair();
        drop(tx);
        assert!(matches!(
            read_frame(&mut rx, Some(Duration::from_secs(2)), None),
            Err(FrameError::Closed)
        ));

        let (mut tx, mut rx) = pair();
        // Header promising 100 bytes, then only 3 before the close.
        let mut partial = Vec::new();
        partial.extend_from_slice(&100u32.to_le_bytes());
        partial.push(2);
        partial.extend_from_slice(b"abc");
        tx.write_all(&partial).unwrap();
        drop(tx);
        match read_frame(&mut rx, Some(Duration::from_secs(2)), None) {
            Err(FrameError::Truncated { expected, got }) => {
                assert_eq!((expected, got), (100, 3));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let (mut tx, mut rx) = pair();
        let mut header = Vec::new();
        header.extend_from_slice(&(u32::MAX).to_le_bytes());
        header.push(1);
        tx.write_all(&header).unwrap();
        match read_frame(&mut rx, Some(Duration::from_secs(2)), None) {
            Err(FrameError::TooLarge { len }) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn stalled_peer_times_out_instead_of_hanging() {
        let (mut tx, mut rx) = pair();
        // Half a header, then silence.
        tx.write_all(&[1, 0]).unwrap();
        let t0 = Instant::now();
        match read_frame(&mut rx, Some(Duration::from_millis(200)), None) {
            Err(FrameError::Stalled) => {}
            other => panic!("expected Stalled, got {other:?}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(5));
        drop(tx);
    }

    #[test]
    fn stop_flag_interrupts_a_blocked_read() {
        let (tx, mut rx) = pair();
        let flag = std::sync::Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            f2.store(true, Ordering::Release);
        });
        match read_frame(&mut rx, None, Some(&flag)) {
            Err(FrameError::Stopped) => {}
            other => panic!("expected Stopped, got {other:?}"),
        }
        killer.join().unwrap();
        drop(tx);
    }

    #[test]
    fn wire_fields_round_trip_bitwise() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_f64s(&[1.5, -2.25, 3.125]);
        let mut r = WireReader::new(&w.buf);
        assert_eq!(r.get_u8().unwrap(), 9);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.get_f64s(3).unwrap(), vec![1.5, -2.25, 3.125]);
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.get_u8(), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn truncated_payload_errors_cleanly() {
        let mut w = WireWriter::new();
        w.put_u32(5);
        let mut r = WireReader::new(&w.buf);
        assert!(r.get_u64().is_err());
        let mut r = WireReader::new(&w.buf);
        assert!(r.get_f64s(100).is_err());
    }

    #[test]
    fn census_counts_every_task_once() {
        let owners = [0usize, 1, 1, 3, 0, 0];
        let census = task_census(owners, 4);
        assert_eq!(census, vec![3, 2, 0, 1]);
        assert_eq!(census.iter().sum::<u64>(), 6);
    }
}

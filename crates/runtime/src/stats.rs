//! Execution traces and schedule statistics.

use crate::graph::TaskId;

/// One executed task in the trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub task: TaskId,
    pub kind: &'static str,
    /// Tile coordinates `(i, j)` when the task was inserted with
    /// [`crate::TaskGraph::insert_at`].
    pub coords: Option<(u32, u32)>,
    pub worker: usize,
    /// Seconds since execution start.
    pub start: f64,
    pub end: f64,
}

impl TraceEvent {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Export a trace as Chrome Tracing JSON (`chrome://tracing`, Perfetto).
///
/// Workers map to thread lanes; each task becomes one complete ("X")
/// event, giving the Gantt view the paper uses to discuss load imbalance
/// under the adaptive formats.
pub fn chrome_trace_json(trace: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in trace.iter().enumerate() {
        let tile = match e.coords {
            Some((r, c)) => format!(", \"tile\": [{r}, {c}]"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"cat\": \"task\", \"ph\": \"X\", \"ts\": {:.3}, \
             \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{\"task\": {}{}}}}}{}\n",
            e.kind,
            e.start * 1e6,
            e.duration() * 1e6,
            e.worker,
            e.task.0,
            tile,
            if i + 1 == trace.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

/// Aggregate per-kind timing from a trace: `(kind, count, total_seconds)`.
pub fn kind_summary(trace: &[TraceEvent]) -> Vec<(&'static str, usize, f64)> {
    let mut out: Vec<(&'static str, usize, f64)> = Vec::new();
    for e in trace {
        match out.iter_mut().find(|(k, _, _)| *k == e.kind) {
            Some((_, c, t)) => {
                *c += 1;
                *t += e.duration();
            }
            None => out.push((e.kind, 1, e.duration())),
        }
    }
    out.sort_by(|a, b| b.2.total_cmp(&a.2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(task: usize, kind: &'static str, worker: usize, start: f64, end: f64) -> TraceEvent {
        TraceEvent {
            task: TaskId(task),
            kind,
            coords: None,
            worker,
            start,
            end,
        }
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let trace = vec![
            TraceEvent {
                task: TaskId(0),
                kind: "potrf",
                coords: Some((3, 3)),
                worker: 0,
                start: 0.0,
                end: 0.5e-3,
            },
            ev(1, "gemm", 1, 0.2e-3, 1.0e-3),
        ];
        let json = chrome_trace_json(&trace);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"name\": \"potrf\""));
        assert!(json.contains("\"tile\": [3, 3]"));
        assert!(json.contains("\"tid\": 1"));
        // Two events, one comma between them.
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
        // The coordinate-less event carries no tile annotation.
        assert_eq!(json.matches("\"tile\"").count(), 1);
    }

    #[test]
    fn chrome_trace_empty() {
        assert_eq!(chrome_trace_json(&[]), "[\n]");
    }

    #[test]
    fn summary_groups_and_sorts() {
        let trace = vec![
            ev(0, "gemm", 0, 0.0, 2.0),
            ev(1, "trsm", 1, 0.0, 1.0),
            ev(2, "gemm", 0, 2.0, 5.0),
        ];
        let s = kind_summary(&trace);
        assert_eq!(s[0], ("gemm", 2, 5.0));
        assert_eq!(s[1], ("trsm", 1, 1.0));
    }
}

//! Post-hoc schedule validation.
//!
//! The executor's only correctness obligation is that every data-hazard
//! edge implied by the declared accesses (RAW, WAR, WAW in insertion
//! order) is respected by the realized schedule. This module checks that
//! obligation *independently*: it re-derives the hazard edges from the
//! access lists alone — deliberately not reusing [`crate::graph`]'s
//! dependency tables, so a bookkeeping bug there cannot hide itself — and
//! compares them against per-task start/end sequence numbers recorded
//! during execution.
//!
//! An edge `pred -> succ` is respected iff `pred` finished before `succ`
//! started: `end_seq(pred) < start_seq(succ)`. Sequence numbers come from
//! a single atomic counter, so they give a total order on observable
//! start/end events regardless of wall-clock resolution.
//!
//! The executor runs this check automatically in debug builds (i.e. under
//! `cargo test`) and on request in release builds — see
//! [`crate::exec::ExecOptions::validate`].

use crate::graph::{Access, AccessMode, DataId, TaskId};
use std::collections::HashMap;

/// Sentinel sequence value marking a task whose order was *not* recorded
/// (sampled validation, [`crate::exec::ExecOptions::validate_every`]).
/// Edges with an unrecorded endpoint are skipped and counted in
/// [`ValidationSummary::edges_skipped`].
pub const UNRECORDED: u64 = u64::MAX;

/// When each task started and ended, in ticks of one global counter.
///
/// Both fields are draws from the same atomic counter, so all starts and
/// ends across all workers are totally ordered and `start_seq < end_seq`
/// for every executed task.
#[derive(Clone, Copy, Debug, Default)]
pub struct TaskOrder {
    pub start_seq: u64,
    pub end_seq: u64,
}

impl TaskOrder {
    /// An unrecorded (sampled-out) task.
    pub fn unrecorded() -> TaskOrder {
        TaskOrder {
            start_seq: UNRECORDED,
            end_seq: UNRECORDED,
        }
    }

    pub fn is_recorded(&self) -> bool {
        self.start_seq != UNRECORDED && self.end_seq != UNRECORDED
    }
}

/// Hazard class of a dependency edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hazard {
    /// Read-after-write: reader must wait for the writer.
    Raw,
    /// Write-after-read: writer must wait for earlier readers.
    War,
    /// Write-after-write: writer must wait for the previous writer.
    Waw,
}

impl Hazard {
    pub fn name(self) -> &'static str {
        match self {
            Hazard::Raw => "RAW",
            Hazard::War => "WAR",
            Hazard::Waw => "WAW",
        }
    }
}

/// One hazard edge the schedule failed to respect.
#[derive(Clone, Copy, Debug)]
pub struct Violation {
    /// The task that had to finish first (earlier in insertion order).
    pub pred: TaskId,
    /// The task that started before `pred` finished.
    pub succ: TaskId,
    /// The datum carrying the hazard.
    pub data: DataId,
    pub hazard: Hazard,
}

/// Outcome of a successful schedule check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidationSummary {
    /// Distinct hazard edges checked (an edge carried by several data or
    /// hazard classes is counted once per class/datum pair).
    pub edges_checked: u64,
    pub raw_edges: u64,
    pub war_edges: u64,
    pub waw_edges: u64,
    /// Edges not checked because one endpoint's order was unrecorded
    /// (sampled validation mode).
    pub edges_skipped: u64,
}

impl ValidationSummary {
    /// Accumulate another (passed) run's census into this one.
    pub fn add(&mut self, other: &ValidationSummary) {
        self.edges_checked += other.edges_checked;
        self.raw_edges += other.raw_edges;
        self.war_edges += other.war_edges;
        self.waw_edges += other.waw_edges;
        self.edges_skipped += other.edges_skipped;
    }
}

/// Re-derive every hazard edge from the access lists (insertion order) and
/// check each against the recorded schedule. `accesses[i]` and `order[i]`
/// describe the task inserted `i`-th; the two slices must be equally long.
///
/// Returns the edge census on success, or every violated edge (in
/// insertion order of the violating successor) on failure.
pub fn check_schedule(
    accesses: &[Vec<Access>],
    order: &[TaskOrder],
) -> Result<ValidationSummary, Vec<Violation>> {
    assert_eq!(
        accesses.len(),
        order.len(),
        "schedule check needs one order record per task"
    );

    let mut summary = ValidationSummary::default();
    let mut violations = Vec::new();

    for_each_edge(accesses, |pred, succ, data, hazard| {
        if !order[pred.0].is_recorded() || !order[succ.0].is_recorded() {
            summary.edges_skipped += 1;
            return;
        }
        summary.edges_checked += 1;
        match hazard {
            Hazard::Raw => summary.raw_edges += 1,
            Hazard::War => summary.war_edges += 1,
            Hazard::Waw => summary.waw_edges += 1,
        }
        if order[pred.0].end_seq >= order[succ.0].start_seq {
            violations.push(Violation {
                pred,
                succ,
                data,
                hazard,
            });
        }
    });

    if violations.is_empty() {
        Ok(summary)
    } else {
        Err(violations)
    }
}

/// The validator's hazard-edge list as data, in derivation order. This is
/// the same walk [`check_schedule`] performs — the pre-execution checker
/// (`xgs-analysis`) re-derives the list with its own independent
/// implementation and the executor asserts element-wise equality.
pub fn derived_edges(accesses: &[Vec<Access>]) -> Vec<(TaskId, TaskId, DataId, Hazard)> {
    let mut edges = Vec::new();
    for_each_edge(accesses, |pred, succ, data, hazard| {
        edges.push((pred, succ, data, hazard));
    });
    edges
}

/// Cross-check [`derived_edges`] against `xgs_analysis::hazard_edges`,
/// the deliberately independent re-implementation in the zero-dependency
/// analysis crate. The two walk the same access lists with separately
/// written code; element-wise equality (same edges, same order, same
/// hazard classes) is the executor's pre-flight proof that the static
/// and dynamic views of the graph agree.
///
/// Returns the common edge count, or a description of the first
/// divergence.
pub fn crosscheck_static_edges(accesses: &[Vec<Access>]) -> Result<usize, String> {
    let spec: Vec<Vec<xgs_analysis::AccessSpec>> = accesses
        .iter()
        .map(|list| {
            list.iter()
                .map(|a| match a.mode {
                    AccessMode::Read => xgs_analysis::AccessSpec::read(a.data.0),
                    AccessMode::Write => xgs_analysis::AccessSpec::write(a.data.0),
                })
                .collect()
        })
        .collect();
    let statics = xgs_analysis::hazard_edges(&spec);
    let dynamics = derived_edges(accesses);
    if statics.len() != dynamics.len() {
        return Err(format!(
            "static derivation found {} edges, validator found {}",
            statics.len(),
            dynamics.len()
        ));
    }
    for (i, (s, (pred, succ, data, hazard))) in statics.iter().zip(&dynamics).enumerate() {
        let dyn_kind = match hazard {
            Hazard::Raw => xgs_analysis::HazardKind::Raw,
            Hazard::War => xgs_analysis::HazardKind::War,
            Hazard::Waw => xgs_analysis::HazardKind::Waw,
        };
        if (s.pred, s.succ, s.data, s.kind) != (pred.0, succ.0, data.0, dyn_kind) {
            return Err(format!(
                "edge {i} diverges: static {}->{} on data {} ({}), validator {}->{} on data {} ({})",
                s.pred,
                s.succ,
                s.data,
                s.kind,
                pred.0,
                succ.0,
                data.0,
                hazard.name()
            ));
        }
    }
    Ok(statics.len())
}

/// Walk every hazard edge implied by the access lists, in insertion
/// order. Each task contributes edges against the *pre-task* state: all
/// of its accesses are matched against earlier tasks before any of them
/// update the writer/reader tables.
fn for_each_edge(accesses: &[Vec<Access>], mut visit: impl FnMut(TaskId, TaskId, DataId, Hazard)) {
    let mut last_writer: HashMap<DataId, TaskId> = HashMap::new();
    let mut readers: HashMap<DataId, Vec<TaskId>> = HashMap::new();

    for (idx, accs) in accesses.iter().enumerate() {
        let id = TaskId(idx);
        for acc in accs {
            match acc.mode {
                AccessMode::Read => {
                    if let Some(&w) = last_writer.get(&acc.data) {
                        visit(w, id, acc.data, Hazard::Raw);
                    }
                }
                AccessMode::Write => {
                    if let Some(&w) = last_writer.get(&acc.data) {
                        visit(w, id, acc.data, Hazard::Waw);
                    }
                    for &r in readers.get(&acc.data).into_iter().flatten() {
                        if r != id {
                            visit(r, id, acc.data, Hazard::War);
                        }
                    }
                }
            }
        }
        for acc in accs {
            match acc.mode {
                AccessMode::Read => readers.entry(acc.data).or_default().push(id),
                AccessMode::Write => {
                    last_writer.insert(acc.data, id);
                    readers.insert(acc.data, Vec::new());
                }
            }
        }
    }
}

/// Human-readable digest of a violation list (first few edges), used by
/// the executor's panic message and available for custom reporting.
/// `labels` names each task (kind, optionally with tile coordinates).
pub fn describe_violations<S: AsRef<str>>(violations: &[Violation], labels: &[S]) -> String {
    let shown = violations.len().min(5);
    let mut out = format!(
        "schedule violated {} hazard edge(s); first {shown}:",
        violations.len()
    );
    let label = |id: TaskId| {
        labels
            .get(id.0)
            .map(|s| s.as_ref())
            .unwrap_or("?")
            .to_string()
    };
    for v in &violations[..shown] {
        out.push_str(&format!(
            "\n  {} on data {}: task {}({}) must precede task {}({})",
            v.hazard.name(),
            v.data.0,
            v.pred.0,
            label(v.pred),
            v.succ.0,
            label(v.succ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(d: u64) -> Vec<Access> {
        vec![Access::write(DataId(d))]
    }

    fn r(d: u64) -> Vec<Access> {
        vec![Access::read(DataId(d))]
    }

    /// Order records for tasks run back-to-back in the given permutation.
    fn serial_order(n: usize, perm: &[usize]) -> Vec<TaskOrder> {
        let mut order = vec![TaskOrder::default(); n];
        let mut seq = 0u64;
        for &i in perm {
            order[i] = TaskOrder {
                start_seq: seq,
                end_seq: seq + 1,
            };
            seq += 2;
        }
        order
    }

    #[test]
    fn insertion_order_always_passes() {
        let accesses = vec![w(0), r(0), r(0), w(0), w(1)];
        let order = serial_order(5, &[0, 1, 2, 3, 4]);
        let s = check_schedule(&accesses, &order).expect("sequential order is valid");
        // RAW w0->r1, RAW w0->r2, WAW w0->w3, WAR r1->w3, WAR r2->w3.
        assert_eq!(s.raw_edges, 2);
        assert_eq!(s.war_edges, 2);
        assert_eq!(s.waw_edges, 1);
        assert_eq!(s.edges_checked, 5);
    }

    #[test]
    fn independent_tasks_may_run_in_any_order() {
        let accesses = vec![w(0), w(1), w(2)];
        let order = serial_order(3, &[2, 0, 1]);
        let s = check_schedule(&accesses, &order).unwrap();
        assert_eq!(s.edges_checked, 0);
    }

    #[test]
    fn raw_violation_detected() {
        let accesses = vec![w(7), r(7)];
        let order = serial_order(2, &[1, 0]); // reader ran first
        let violations = check_schedule(&accesses, &order).unwrap_err();
        assert_eq!(violations.len(), 1);
        let v = violations[0];
        assert_eq!(v.hazard, Hazard::Raw);
        assert_eq!((v.pred, v.succ, v.data), (TaskId(0), TaskId(1), DataId(7)));
    }

    #[test]
    fn war_violation_detected() {
        // read d, then write d: swapping them is a WAR violation.
        let accesses = vec![w(3), r(3), w(3)];
        let order = serial_order(3, &[0, 2, 1]);
        let violations = check_schedule(&accesses, &order).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.hazard == Hazard::War && v.pred == TaskId(1) && v.succ == TaskId(2)));
    }

    #[test]
    fn waw_violation_detected() {
        let accesses = vec![w(5), w(5)];
        let order = serial_order(2, &[1, 0]);
        let violations = check_schedule(&accesses, &order).unwrap_err();
        assert!(violations.iter().any(|v| v.hazard == Hazard::Waw));
    }

    #[test]
    fn overlapping_execution_of_dependent_tasks_fails() {
        // succ started (seq 1) before pred ended (seq 2): violation even
        // though pred started first.
        let accesses = vec![w(0), r(0)];
        let order = vec![
            TaskOrder {
                start_seq: 0,
                end_seq: 2,
            },
            TaskOrder {
                start_seq: 1,
                end_seq: 3,
            },
        ];
        assert!(check_schedule(&accesses, &order).is_err());
    }

    #[test]
    fn overlapping_execution_of_independent_tasks_passes() {
        let accesses = vec![w(0), w(1)];
        let order = vec![
            TaskOrder {
                start_seq: 0,
                end_seq: 2,
            },
            TaskOrder {
                start_seq: 1,
                end_seq: 3,
            },
        ];
        assert!(check_schedule(&accesses, &order).is_ok());
    }

    #[test]
    fn sampled_mode_at_k1_still_catches_reversed_order() {
        // validate_every = 1 records every task — the sampling machinery is
        // in the path, but nothing is skipped and a reversed RAW edge is
        // still fatal.
        let accesses = vec![w(4), r(4)];
        let order = serial_order(2, &[1, 0]);
        assert!(order.iter().all(|o| o.is_recorded()));
        let violations = check_schedule(&accesses, &order).unwrap_err();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].hazard, Hazard::Raw);
    }

    #[test]
    fn unrecorded_endpoints_skip_edges_but_keep_counting() {
        // Chain w -> r -> w over one datum, middle task sampled out: both
        // the RAW edge into it and the WAR edge out of it are skipped, the
        // rest still checked.
        let accesses = vec![w(2), r(2), w(2)];
        let mut order = serial_order(3, &[0, 1, 2]);
        order[1] = TaskOrder::unrecorded();
        let s = check_schedule(&accesses, &order).unwrap();
        assert_eq!(s.edges_skipped, 2, "RAW 0->1 and WAR 1->2");
        assert_eq!(s.edges_checked, 1, "WAW 0->2 survives");
        assert_eq!(s.waw_edges, 1);

        // A reversed edge between two *recorded* tasks is still caught even
        // when other tasks are sampled out.
        let accesses = vec![w(2), r(2), w(5), r(5)];
        let mut order = serial_order(4, &[0, 1, 3, 2]); // 3 before 2: RAW violation
        order[0] = TaskOrder::unrecorded();
        let violations = check_schedule(&accesses, &order).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| v.pred == TaskId(2) && v.succ == TaskId(3)));
    }

    #[test]
    fn fully_unrecorded_run_skips_everything() {
        let accesses = vec![w(0), r(0), w(0)];
        let order = vec![TaskOrder::unrecorded(); 3];
        let s = check_schedule(&accesses, &order).unwrap();
        assert_eq!(s.edges_checked, 0);
        assert_eq!(s.edges_skipped, 3);
    }

    #[test]
    fn describe_names_the_kinds() {
        let accesses = vec![w(1), r(1)];
        let order = serial_order(2, &[1, 0]);
        let violations = check_schedule(&accesses, &order).unwrap_err();
        let msg = describe_violations(&violations, &["potrf", "trsm"]);
        assert!(msg.contains("RAW"));
        assert!(msg.contains("potrf"));
        assert!(msg.contains("trsm"));
    }
}

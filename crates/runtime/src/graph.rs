//! Dataflow task graph with superscalar hazard tracking.
//!
//! Tasks are inserted in the sequential (numerically correct) order of the
//! algorithm, declaring which data handles they read and write. The graph
//! derives read-after-write, write-after-read, and write-after-write
//! dependencies, which is sufficient for any execution order the executor
//! picks to be equivalent to the sequential one — the same "separation of
//! concerns" contract StarPU/PaRSEC give the paper's solver.

use std::collections::HashMap;

/// Opaque identifier of a datum (a tile, a vector segment, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataId(pub u64);

/// Task handle within one graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// How a task touches a datum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    Read,
    /// Read-modify-write (the common case for tile kernels).
    Write,
}

/// One declared access.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    pub data: DataId,
    pub mode: AccessMode,
}

impl Access {
    pub fn read(data: DataId) -> Access {
        Access {
            data,
            mode: AccessMode::Read,
        }
    }

    pub fn write(data: DataId) -> Access {
        Access {
            data,
            mode: AccessMode::Write,
        }
    }
}

pub(crate) struct TaskNode {
    pub kind: &'static str,
    /// Tile coordinates `(i, j)` for kernels that act on a tile; carried
    /// into traces and validator diagnostics.
    pub coords: Option<(u32, u32)>,
    pub closure: Option<Box<dyn FnOnce() + Send>>,
    /// Tasks that must run after this one.
    pub dependents: Vec<TaskId>,
    /// Number of unmet dependencies.
    pub n_deps: usize,
    /// Scheduling priority (higher runs earlier among ready tasks).
    pub priority: i64,
    /// Estimated cost (seconds) for simulation / priority refinement.
    pub cost: f64,
    /// Accesses, kept for the distributed simulator's communication model.
    pub accesses: Vec<Access>,
}

/// A dependency graph under construction.
#[derive(Default)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<TaskNode>,
    /// Last task that wrote each datum.
    last_writer: HashMap<DataId, TaskId>,
    /// Tasks that read each datum since its last write.
    readers: HashMap<DataId, Vec<TaskId>>,
}

impl TaskGraph {
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Number of tasks inserted so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Insert a task. `priority` breaks ties among ready tasks (the tile
    /// Cholesky uses panel depth so the critical path advances first);
    /// `cost` is the modeled execution time used by the distributed
    /// simulator (ignored by the shared-memory executor).
    pub fn insert(
        &mut self,
        kind: &'static str,
        accesses: Vec<Access>,
        priority: i64,
        cost: f64,
        closure: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        self.insert_task(kind, None, accesses, priority, cost, closure)
    }

    /// [`insert`](TaskGraph::insert) for a kernel acting on tile `(i, j)`;
    /// the coordinates flow into execution traces and schedule-validator
    /// diagnostics.
    pub fn insert_at(
        &mut self,
        kind: &'static str,
        coords: (u32, u32),
        accesses: Vec<Access>,
        priority: i64,
        cost: f64,
        closure: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        self.insert_task(kind, Some(coords), accesses, priority, cost, closure)
    }

    fn insert_task(
        &mut self,
        kind: &'static str,
        coords: Option<(u32, u32)>,
        accesses: Vec<Access>,
        priority: i64,
        cost: f64,
        closure: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        let mut n_deps = 0usize;
        let add_dep = |tasks: &mut Vec<TaskNode>, from: TaskId, n_deps: &mut usize| {
            // Dedup: a task may depend on the same predecessor through
            // several data; count it once.
            if !tasks[from.0].dependents.contains(&id) {
                tasks[from.0].dependents.push(id);
                *n_deps += 1;
            }
        };

        for acc in &accesses {
            match acc.mode {
                AccessMode::Read => {
                    if let Some(&w) = self.last_writer.get(&acc.data) {
                        add_dep(&mut self.tasks, w, &mut n_deps); // RAW
                    }
                }
                AccessMode::Write => {
                    if let Some(&w) = self.last_writer.get(&acc.data) {
                        add_dep(&mut self.tasks, w, &mut n_deps); // WAW
                    }
                    for &r in self.readers.get(&acc.data).into_iter().flatten() {
                        if r != id {
                            add_dep(&mut self.tasks, r, &mut n_deps); // WAR
                        }
                    }
                }
            }
        }

        // Update hazard tables after computing deps (a Write resets the
        // reader set; a Read appends).
        for acc in &accesses {
            match acc.mode {
                AccessMode::Read => {
                    self.readers.entry(acc.data).or_default().push(id);
                }
                AccessMode::Write => {
                    self.last_writer.insert(acc.data, id);
                    self.readers.insert(acc.data, Vec::new());
                }
            }
        }

        self.tasks.push(TaskNode {
            kind,
            coords,
            closure: Some(Box::new(closure)),
            dependents: Vec::new(),
            n_deps,
            priority,
            cost,
            accesses,
        });
        id
    }

    /// Kind label of every task, in insertion (task-id) order. Cheap view
    /// for static checks such as the Cholesky kernel census.
    pub fn task_kinds(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.tasks.iter().map(|t| t.kind)
    }

    /// Longest path length (in tasks) — a lower bound on parallel steps.
    pub fn critical_path_len(&self) -> usize {
        let n = self.tasks.len();
        let mut depth = vec![0usize; n];
        let mut best = 0;
        // Tasks are in topological (insertion) order by construction.
        for i in 0..n {
            let d = depth[i] + 1;
            best = best.max(d);
            for &TaskId(s) in &self.tasks[i].dependents {
                depth[s] = depth[s].max(d);
            }
        }
        best
    }

    /// Critical path weighted by task cost (seconds).
    pub fn critical_path_cost(&self) -> f64 {
        let n = self.tasks.len();
        let mut depth = vec![0f64; n];
        let mut best = 0.0f64;
        for i in 0..n {
            let d = depth[i] + self.tasks[i].cost;
            best = best.max(d);
            for &TaskId(s) in &self.tasks[i].dependents {
                depth[s] = depth[s].max(d);
            }
        }
        best
    }

    /// Total modeled work (sum of costs).
    pub fn total_cost(&self) -> f64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// Render the DAG in Graphviz dot format (small graphs / debugging;
    /// node labels are `kind#id`, colored per kind).
    pub fn to_dot(&self) -> String {
        let color = |kind: &str| match kind {
            "potrf" => "#d62728",
            "trsm" => "#1f77b4",
            "syrk" => "#2ca02c",
            "gemm" => "#9467bd",
            _ => "#7f7f7f",
        };
        let mut out = String::from(
            "digraph tasks {\n  rankdir=TB;\n  node [style=filled, fontcolor=white];\n",
        );
        for (i, t) in self.tasks.iter().enumerate() {
            out.push_str(&format!(
                "  t{i} [label=\"{}#{i}\", fillcolor=\"{}\"];\n",
                t.kind,
                color(t.kind)
            ));
        }
        for (i, t) in self.tasks.iter().enumerate() {
            for &TaskId(s) in &t.dependents {
                out.push_str(&format!("  t{i} -> t{s};\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Export the structural skeleton for the distributed simulator:
    /// `(kind, cost, accesses, dependents)` per task in topological order.
    pub fn skeleton(&self) -> Vec<(&'static str, f64, Vec<Access>, Vec<TaskId>)> {
        self.tasks
            .iter()
            .map(|t| (t.kind, t.cost, t.accesses.clone(), t.dependents.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() {}

    #[test]
    fn raw_dependency() {
        let mut g = TaskGraph::new();
        let a = DataId(1);
        let t0 = g.insert("w", vec![Access::write(a)], 0, 0.0, noop);
        let t1 = g.insert("r", vec![Access::read(a)], 0, 0.0, noop);
        assert_eq!(g.tasks[t0.0].dependents, vec![t1]);
        assert_eq!(g.tasks[t1.0].n_deps, 1);
    }

    #[test]
    fn war_and_waw_dependencies() {
        let mut g = TaskGraph::new();
        let a = DataId(1);
        let w0 = g.insert("w0", vec![Access::write(a)], 0, 0.0, noop);
        let r0 = g.insert("r0", vec![Access::read(a)], 0, 0.0, noop);
        let r1 = g.insert("r1", vec![Access::read(a)], 0, 0.0, noop);
        let w1 = g.insert("w1", vec![Access::write(a)], 0, 0.0, noop);
        // w1 must wait for both readers (WAR) and the previous writer (WAW,
        // subsumed here through the readers but counted if no readers).
        assert!(g.tasks[r0.0].dependents.contains(&w1));
        assert!(g.tasks[r1.0].dependents.contains(&w1));
        assert_eq!(g.tasks[w1.0].n_deps, 3); // w0 (WAW) + two readers
        let _ = w0;
    }

    #[test]
    fn independent_tasks_have_no_edges() {
        let mut g = TaskGraph::new();
        let t0 = g.insert("a", vec![Access::write(DataId(1))], 0, 0.0, noop);
        let t1 = g.insert("b", vec![Access::write(DataId(2))], 0, 0.0, noop);
        assert!(g.tasks[t0.0].dependents.is_empty());
        assert_eq!(g.tasks[t1.0].n_deps, 0);
    }

    #[test]
    fn duplicate_dependencies_counted_once() {
        let mut g = TaskGraph::new();
        let (a, b) = (DataId(1), DataId(2));
        let t0 = g.insert("w", vec![Access::write(a), Access::write(b)], 0, 0.0, noop);
        let t1 = g.insert("r", vec![Access::read(a), Access::read(b)], 0, 0.0, noop);
        assert_eq!(g.tasks[t0.0].dependents, vec![t1]);
        assert_eq!(g.tasks[t1.0].n_deps, 1);
    }

    #[test]
    fn critical_path_of_a_chain_and_a_fan() {
        let mut g = TaskGraph::new();
        let a = DataId(1);
        for _ in 0..5 {
            g.insert("chain", vec![Access::write(a)], 0, 1.0, noop);
        }
        assert_eq!(g.critical_path_len(), 5);
        assert_eq!(g.critical_path_cost(), 5.0);
        // A fan of independent tasks doesn't extend the path.
        for i in 0..10 {
            g.insert("fan", vec![Access::write(DataId(100 + i))], 0, 1.0, noop);
        }
        assert_eq!(g.critical_path_len(), 5);
        assert_eq!(g.total_cost(), 15.0);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let mut g = TaskGraph::new();
        let a = DataId(1);
        g.insert("potrf", vec![Access::write(a)], 0, 0.0, noop);
        g.insert("trsm", vec![Access::read(a)], 0, 0.0, noop);
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("potrf#0"));
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn cholesky_like_dag_shape() {
        // 3x3 tile Cholesky: potrf(0), trsm(1,0), trsm(2,0), syrk(1,1),
        // gemm(2,1), syrk(2,2), potrf(1), ... — verify the DAG depth matches
        // the known critical path of tile Cholesky.
        let mut g = TaskGraph::new();
        let nt = 3usize;
        let d = |i: usize, j: usize| DataId((i * nt + j) as u64);
        for k in 0..nt {
            g.insert("potrf", vec![Access::write(d(k, k))], 0, 1.0, noop);
            for i in k + 1..nt {
                g.insert(
                    "trsm",
                    vec![Access::read(d(k, k)), Access::write(d(i, k))],
                    0,
                    1.0,
                    noop,
                );
            }
            for i in k + 1..nt {
                for j in k + 1..=i {
                    if i == j {
                        g.insert(
                            "syrk",
                            vec![Access::read(d(i, k)), Access::write(d(i, i))],
                            0,
                            1.0,
                            noop,
                        );
                    } else {
                        g.insert(
                            "gemm",
                            vec![
                                Access::read(d(i, k)),
                                Access::read(d(j, k)),
                                Access::write(d(i, j)),
                            ],
                            0,
                            1.0,
                            noop,
                        );
                    }
                }
            }
        }
        // Critical path of 3x3 tile Cholesky:
        // potrf0 -> trsm(1,0) -> syrk(1) -> potrf1 -> trsm(2,1) -> syrk(2)
        // -> potrf2 = 7 with the gemm inserted: potrf0,trsm10,gemm21? The
        // known depth for nt=3 with this kernel set is 7.
        assert_eq!(g.critical_path_len(), 7);
    }
}

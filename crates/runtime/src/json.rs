//! A small hand-rolled JSON reader.
//!
//! The workspace ships no external dependencies, so all machine-readable
//! output is hand-written JSON ([`crate::metrics::MetricsReport::to_json`],
//! [`crate::stats::chrome_trace_json`], the bench result dumps). This
//! module adds the matching *reader*: the `xgs-server` wire protocol and
//! the `metrics-diff` tool both parse with it. It is a strict recursive-
//! descent parser over the JSON grammar (RFC 8259) minus one liberty:
//! numbers are parsed as `f64` only, which every producer in this
//! repository satisfies.

use std::collections::BTreeMap;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Object members in a sorted map (duplicate keys: last one wins).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as an integer count (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|o| o.get(key))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Serialize back to compact JSON. Numbers use Rust's shortest
    /// round-trip `f64` formatting, so parse → serialize → parse is
    /// lossless (the server relies on this to re-embed sub-documents).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            // JSON has no NaN/Infinity literals; `n.to_string()` would emit
            // them verbatim and corrupt the document, so non-finite numbers
            // serialize as null (the only lossless-ish option RFC 8259
            // leaves us).
            JsonValue::Number(n) if !n.is_finite() => out.push_str("null"),
            JsonValue::Number(n) => out.push_str(&n.to_string()),
            JsonValue::String(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\":");
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse error with the byte offset where parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth [`parse_json`] accepts. Each level of
/// array/object nesting costs one native stack frame in the recursive-
/// descent parser, so an attacker-supplied `[[[[…]]]]` must hit a parse
/// error long before it can overflow the thread stack.
pub const MAX_JSON_DEPTH: usize = 128;

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth (bounded by [`MAX_JSON_DEPTH`]).
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Enter one container level; errors once the document nests deeper
    /// than [`MAX_JSON_DEPTH`] (recursion-bomb guard).
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_JSON_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_JSON_DEPTH} levels")));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is valid UTF-8 by &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escape a string for embedding in hand-rolled JSON output (the writer
/// counterpart used by the server protocol).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap().as_f64(), Some(42.0));
        assert_eq!(parse_json("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse_json("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("a").unwrap().as_array().unwrap()[2]
            .get("b")
            .unwrap()
            .is_null());
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn whitespace_tolerated_everywhere() {
        let v = parse_json(" { \"k\" :\n[ 1 ,\t2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ slash → unicode";
        let encoded = format!("\"{}\"", escape_json(original));
        let parsed = parse_json(&encoded).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
        // \u escapes, including a surrogate pair.
        let v = parse_json(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
            "{\"a\" 1}",
            "[1 2]",
            "\"\\x\"",
            "\"\\ud800\"",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_bomb_is_an_error_not_a_stack_overflow() {
        // 1M unclosed brackets: without the depth guard this recursion
        // would blow the thread stack; with it, a JsonError at level 129.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let bomb = open.repeat(1_000_000);
            let err = parse_json(&bomb).unwrap_err();
            assert!(err.message.contains("nesting"), "{err}");
            // Exactly MAX_JSON_DEPTH levels still parse.
            let ok = format!(
                "{}0{}",
                open.repeat(MAX_JSON_DEPTH),
                close.repeat(MAX_JSON_DEPTH)
            );
            assert!(parse_json(&ok).is_ok(), "depth {MAX_JSON_DEPTH} rejected");
            let too_deep = format!(
                "{}0{}",
                open.repeat(MAX_JSON_DEPTH + 1),
                close.repeat(MAX_JSON_DEPTH + 1)
            );
            assert!(parse_json(&too_deep).is_err());
        }
        // Sibling containers don't accumulate depth.
        let wide = format!("[{}]", vec!["[0]"; 1000].join(","));
        assert!(parse_json(&wide).is_ok());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let v = JsonValue::Array(vec![JsonValue::Number(bad), JsonValue::Number(1.5)]);
            let s = v.to_json_string();
            assert_eq!(s, "[null,1.5]", "{bad} must not reach the wire");
            parse_json(&s).expect("output stays valid JSON");
        }
        // Overflowing literals parse to infinity (grammar-valid input)…
        let inf = parse_json("1e999").unwrap();
        assert_eq!(inf.as_f64(), Some(f64::INFINITY));
        // …and round-trip to null rather than to an invalid document.
        assert_eq!(inf.to_json_string(), "null");
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse_json("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse_json("3.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("-3").unwrap().as_u64(), None);
        assert_eq!(parse_json("true").unwrap().as_u64(), None);
    }

    #[test]
    fn serializer_round_trips() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":"x\"y","d":true,"e":1e300}"#;
        let v = parse_json(text).unwrap();
        let re = v.to_json_string();
        assert_eq!(parse_json(&re).unwrap(), v);
    }

    #[test]
    fn parses_own_metrics_export() {
        // The reader must accept what MetricsReport::to_json emits.
        let mut m = crate::metrics::MetricsReport {
            wall_seconds: 1.25,
            tasks: 7,
            workers: 2,
            worker_stats: vec![Default::default(); 2],
            ..Default::default()
        };
        let mut k = crate::metrics::KernelStats::new("gemm");
        k.record(3.5e-4);
        m.kernels.push(k);
        let v = parse_json(&m.to_json()).unwrap();
        assert_eq!(v.get("tasks").unwrap().as_u64(), Some(7));
        assert_eq!(
            v.get("kernels").unwrap().as_array().unwrap()[0]
                .get("kind")
                .unwrap()
                .as_str(),
            Some("gemm")
        );
    }
}

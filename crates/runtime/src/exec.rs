//! Shared-memory executor: asynchronous task execution over a worker pool.
//!
//! Ready tasks sit in a priority queue; workers pull the highest-priority
//! ready task, run it, and release its dependents. With correct hazard
//! edges from the graph this is observationally equivalent to the
//! sequential insertion order while exploiting all available concurrency —
//! the runtime contract the paper's solver is built on.

use crate::graph::{TaskGraph, TaskId};
use crate::stats::TraceEvent;
use parking_lot::{Condvar, Mutex};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Outcome of a graph execution.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Wall-clock seconds for the whole graph.
    pub wall_seconds: f64,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Worker count used.
    pub workers: usize,
    /// Per-worker busy seconds.
    pub busy_seconds: Vec<f64>,
    /// Execution trace (one event per task) when tracing was requested.
    pub trace: Vec<TraceEvent>,
}

impl ExecReport {
    /// Load imbalance: `max(busy) / mean(busy)` (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self.busy_seconds.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.busy_seconds.iter().sum::<f64>() / self.busy_seconds.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Parallel efficiency: total busy time / (wall * workers).
    pub fn efficiency(&self) -> f64 {
        let busy: f64 = self.busy_seconds.iter().sum();
        let denom = self.wall_seconds * self.workers as f64;
        if denom > 0.0 {
            busy / denom
        } else {
            1.0
        }
    }
}

/// Ready-task ordering policy — PaRSEC ships several scheduler heuristics;
/// the same knob is exposed here for the scheduling ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Highest task priority first (critical-path heuristic; the default).
    Priority,
    /// Oldest ready task first (breadth-first; maximizes fan-out).
    Fifo,
    /// Newest ready task first (depth-first; maximizes locality).
    Lifo,
}

#[derive(PartialEq, Eq)]
struct ReadyTask {
    priority: i64,
    id: TaskId,
}

impl Ord for ReadyTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by priority; FIFO-ish by id for ties (earlier first).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Map a task's nominal priority to the heap key the policy wants.
fn effective_priority(policy: SchedPolicy, priority: i64, idx: usize) -> i64 {
    match policy {
        SchedPolicy::Priority => priority,
        // FIFO: earlier insertion = higher key (the heap breaks priority
        // ties by id already, so collapse priorities entirely).
        SchedPolicy::Fifo => -(idx as i64),
        SchedPolicy::Lifo => idx as i64,
    }
}

#[allow(clippy::type_complexity)]
struct Shared {
    queue: Mutex<BinaryHeap<ReadyTask>>,
    available: Condvar,
    remaining: AtomicUsize,
}

/// Execute a task graph on `workers` threads (0 = all logical CPUs) with
/// the default critical-path priority policy.
///
/// `trace` records per-task start/end times (adds a little overhead).
pub fn execute(graph: TaskGraph, workers: usize, trace: bool) -> ExecReport {
    execute_with_policy(graph, workers, trace, SchedPolicy::Priority)
}

/// [`execute`] with an explicit [`SchedPolicy`].
#[allow(clippy::needless_range_loop)]
pub fn execute_with_policy(
    graph: TaskGraph,
    workers: usize,
    trace: bool,
    policy: SchedPolicy,
) -> ExecReport {
    let workers = if workers == 0 { num_cpus::get() } else { workers };
    let n = graph.len();

    // Unpack the graph into shared, lock-free-readable structures.
    let mut closures: Vec<Option<Box<dyn FnOnce() + Send>>> = Vec::with_capacity(n);
    let mut dependents: Vec<Vec<TaskId>> = Vec::with_capacity(n);
    let mut kinds: Vec<&'static str> = Vec::with_capacity(n);
    let mut priorities: Vec<i64> = Vec::with_capacity(n);
    let mut dep_counts: Vec<AtomicUsize> = Vec::with_capacity(n);
    let mut initial_ready: Vec<ReadyTask> = Vec::new();
    for (idx, mut t) in graph.tasks.into_iter().enumerate() {
        closures.push(t.closure.take());
        dependents.push(std::mem::take(&mut t.dependents));
        kinds.push(t.kind);
        priorities.push(t.priority);
        dep_counts.push(AtomicUsize::new(t.n_deps));
        if t.n_deps == 0 {
            initial_ready.push(ReadyTask { priority: effective_priority(policy, t.priority, idx), id: TaskId(idx) });
        }
    }
    // Closures must be callable from any worker; wrap in per-task Mutex-free
    // Option slots guarded by the DAG's exclusivity (each task runs once).
    #[allow(clippy::type_complexity)]
    let closures: Vec<Mutex<Option<Box<dyn FnOnce() + Send>>>> =
        closures.into_iter().map(Mutex::new).collect();

    let shared = Shared {
        queue: Mutex::new(initial_ready.into_iter().collect()),
        available: Condvar::new(),
        remaining: AtomicUsize::new(n),
    };

    let start = Instant::now();
    let busy: Vec<Mutex<f64>> = (0..workers).map(|_| Mutex::new(0.0)).collect();
    let traces: Vec<Mutex<Vec<TraceEvent>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            let closures = &closures;
            let dependents = &dependents;
            let dep_counts = &dep_counts;
            let priorities = &priorities;
            let kinds = &kinds;
            let busy = &busy;
            let traces = &traces;
            scope.spawn(move || {
                loop {
                    // Grab the best ready task or wait for one.
                    let task = {
                        let mut q = shared.queue.lock();
                        loop {
                            if shared.remaining.load(Ordering::Acquire) == 0 {
                                return;
                            }
                            if let Some(t) = q.pop() {
                                break t;
                            }
                            shared.available.wait(&mut q);
                        }
                    };
                    let t0 = start.elapsed().as_secs_f64();
                    if let Some(f) = closures[task.id.0].lock().take() {
                        f();
                    }
                    let t1 = start.elapsed().as_secs_f64();
                    *busy[w].lock() += t1 - t0;
                    if trace {
                        traces[w].lock().push(TraceEvent {
                            task: task.id,
                            kind: kinds[task.id.0],
                            worker: w,
                            start: t0,
                            end: t1,
                        });
                    }

                    // Release dependents.
                    let mut newly_ready = Vec::new();
                    for &dep in &dependents[task.id.0] {
                        if dep_counts[dep.0].fetch_sub(1, Ordering::AcqRel) == 1 {
                            newly_ready.push(ReadyTask {
                                priority: effective_priority(policy, priorities[dep.0], dep.0),
                                id: dep,
                            });
                        }
                    }
                    let finished = shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1;
                    if !newly_ready.is_empty() {
                        let mut q = shared.queue.lock();
                        for r in newly_ready {
                            q.push(r);
                        }
                        drop(q);
                        shared.available.notify_all();
                    }
                    if finished {
                        // Take the queue lock before notifying: a waiter is
                        // then either before its remaining-check (and will
                        // observe 0) or already parked (and gets the
                        // notification) — no lost wakeup.
                        drop(shared.queue.lock());
                        shared.available.notify_all();
                        return;
                    }
                }
            });
        }
    });

    let wall = start.elapsed().as_secs_f64();
    let busy_seconds: Vec<f64> = busy.iter().map(|b| *b.lock()).collect();
    let mut trace_events: Vec<TraceEvent> = traces
        .iter()
        .flat_map(|t| t.lock().drain(..).collect::<Vec<_>>())
        .collect();
    trace_events.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());

    ExecReport { wall_seconds: wall, tasks: n, workers, busy_seconds, trace: trace_events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, DataId};
    use std::sync::atomic::{AtomicU64, Ordering as AOrd};
    use std::sync::Arc;

    #[test]
    fn executes_every_task_exactly_once() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        for i in 0..500 {
            let c = counter.clone();
            g.insert("inc", vec![Access::write(DataId(i % 7))], 0, 0.0, move || {
                c.fetch_add(1, AOrd::Relaxed);
            });
        }
        let report = execute(g, 4, false);
        assert_eq!(counter.load(AOrd::Relaxed), 500);
        assert_eq!(report.tasks, 500);
    }

    #[test]
    fn dependency_order_respected_under_parallelism() {
        // A chain through one datum must observe strictly increasing values.
        let value = Arc::new(AtomicU64::new(0));
        let ok = Arc::new(AtomicU64::new(1));
        let mut g = TaskGraph::new();
        let d = DataId(0);
        for i in 0..200u64 {
            let v = value.clone();
            let ok = ok.clone();
            g.insert("step", vec![Access::write(d)], 0, 0.0, move || {
                let prev = v.swap(i + 1, AOrd::SeqCst);
                if prev != i {
                    ok.store(0, AOrd::SeqCst);
                }
            });
        }
        execute(g, 8, false);
        assert_eq!(ok.load(AOrd::SeqCst), 1, "chain ran out of order");
    }

    #[test]
    fn parallel_matches_sequential_result() {
        // Random DAG over 16 data cells doing deterministic arithmetic:
        // result must equal the 1-worker execution.
        fn build(values: Arc<Vec<AtomicU64>>) -> TaskGraph {
            let mut g = TaskGraph::new();
            let mut seed = 12345u64;
            for _ in 0..400 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (seed >> 10) as usize % 16;
                let b = (seed >> 20) as usize % 16;
                let v = values.clone();
                g.insert(
                    "mix",
                    vec![Access::read(DataId(a as u64)), Access::write(DataId(b as u64))],
                    0,
                    0.0,
                    move || {
                        let x = v[a].load(AOrd::SeqCst);
                        let y = v[b].load(AOrd::SeqCst);
                        v[b].store(y.wrapping_mul(31).wrapping_add(x ^ 0x9E37), AOrd::SeqCst);
                    },
                );
            }
            g
        }
        let seq: Arc<Vec<AtomicU64>> = Arc::new((0..16).map(AtomicU64::new).collect());
        execute(build(seq.clone()), 1, false);
        let par: Arc<Vec<AtomicU64>> = Arc::new((0..16).map(AtomicU64::new).collect());
        execute(build(par.clone()), 8, false);
        for i in 0..16 {
            assert_eq!(seq[i].load(AOrd::SeqCst), par[i].load(AOrd::SeqCst), "cell {i}");
        }
    }

    #[test]
    fn priorities_order_ready_tasks_on_single_worker() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        for (i, prio) in [(0u64, 1i64), (1, 5), (2, 3)] {
            let o = order.clone();
            g.insert("p", vec![Access::write(DataId(i))], prio, 0.0, move || {
                o.lock().push(prio);
            });
        }
        execute(g, 1, false);
        assert_eq!(*order.lock(), vec![5, 3, 1]);
    }

    #[test]
    fn trace_covers_all_tasks() {
        let mut g = TaskGraph::new();
        for i in 0..50 {
            g.insert("t", vec![Access::write(DataId(i))], 0, 0.0, || {
                std::hint::black_box(0u64);
            });
        }
        let r = execute(g, 3, true);
        assert_eq!(r.trace.len(), 50);
        assert!(r.trace.iter().all(|e| e.end >= e.start));
        assert!(r.efficiency() <= 1.0 + 1e-9);
        assert!(r.imbalance() >= 1.0 - 1e-9);
    }

    #[test]
    fn empty_graph_returns_clean_report() {
        let r = execute(TaskGraph::new(), 2, true);
        assert_eq!(r.tasks, 0);
        assert!(r.trace.is_empty());
    }

    #[test]
    fn wide_fan_uses_multiple_workers() {
        // 64 independent 2ms sleeps on 8 workers: multiple workers must
        // participate and the wall time must beat the 128ms serial time
        // with margin. (Sleeps overlap even on one CPU; the generous bound
        // keeps the test stable when the host is otherwise loaded.)
        let mut g = TaskGraph::new();
        for i in 0..64 {
            g.insert("sleep", vec![Access::write(DataId(i))], 0, 0.0, || {
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
        }
        let r = execute(g, 8, true);
        let distinct: std::collections::HashSet<usize> =
            r.trace.iter().map(|e| e.worker).collect();
        assert!(distinct.len() >= 2, "only {} worker(s) ran tasks", distinct.len());
        assert!(
            r.wall_seconds < 0.100,
            "no parallelism observed: {}s for 128ms of serial sleeps",
            r.wall_seconds
        );
    }
}

//! Shared-memory executor: asynchronous task execution over a worker pool.
//!
//! Ready tasks sit in a priority queue; workers pull the highest-priority
//! ready task, run it, and release its dependents. With correct hazard
//! edges from the graph this is observationally equivalent to the
//! sequential insertion order while exploiting all available concurrency —
//! the runtime contract the paper's solver is built on.
//!
//! That contract is *checked*, not assumed: every run records per-task
//! start/end sequence numbers, and [`crate::validate`] re-derives the
//! hazard edges from the declared accesses and asserts the schedule
//! respected each one. Validation is on by default in debug builds (so
//! every `cargo test` execution is validated) and opt-in in release via
//! [`ExecOptions::validate`]. Runs also aggregate a [`MetricsReport`]
//! (per-kernel timings, queue depth, worker balance, conversion traffic).

use crate::convert::conversion_counts;
use crate::graph::{Access, TaskGraph, TaskId};
use crate::metrics::{KernelStats, MetricsReport, QueueDepthStats, WorkerStats};
use crate::stats::TraceEvent;
use crate::validate::{check_schedule, describe_violations, TaskOrder, UNRECORDED};
use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Outcome of a graph execution.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Wall-clock seconds for the whole graph.
    pub wall_seconds: f64,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Worker count used.
    pub workers: usize,
    /// Per-worker busy seconds.
    pub busy_seconds: Vec<f64>,
    /// Execution trace (one event per task) when tracing was requested.
    pub trace: Vec<TraceEvent>,
    /// Aggregated execution metrics (when [`ExecOptions::metrics`] was on,
    /// the default).
    pub metrics: Option<MetricsReport>,
}

impl ExecReport {
    /// Load imbalance: `max(busy) / mean(busy)` (1.0 = perfectly
    /// balanced).
    ///
    /// NaN-free by construction: when no busy time was recorded (empty
    /// graph, or all tasks were too fast to measure) the ratio is
    /// undefined and the *balanced* sentinel `1.0` is returned.
    pub fn imbalance(&self) -> f64 {
        let max = self.busy_seconds.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.busy_seconds.iter().sum::<f64>() / self.busy_seconds.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Parallel efficiency: total busy time / (wall * workers).
    ///
    /// NaN-free by construction: if the denominator is zero (a graph so
    /// small the wall clock did not advance) there was no opportunity to
    /// waste worker time and the ideal sentinel `1.0` is returned; a
    /// positive wall with zero busy time yields `0.0` naturally.
    pub fn efficiency(&self) -> f64 {
        let busy: f64 = self.busy_seconds.iter().sum();
        let denom = self.wall_seconds * self.workers as f64;
        if denom > 0.0 {
            busy / denom
        } else {
            1.0
        }
    }
}

/// Ready-task ordering policy — PaRSEC ships several scheduler heuristics;
/// the same knob is exposed here for the scheduling ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Highest task priority first (critical-path heuristic; the default).
    Priority,
    /// Oldest ready task first (breadth-first; maximizes fan-out).
    Fifo,
    /// Newest ready task first (depth-first; maximizes locality).
    Lifo,
}

/// Execution knobs for [`execute_opts`].
#[derive(Clone, Copy, Debug)]
pub struct ExecOptions {
    /// Record per-task start/end times into [`ExecReport::trace`].
    pub trace: bool,
    /// Ready-task ordering policy.
    pub policy: SchedPolicy,
    /// Run the post-hoc schedule validator ([`crate::validate`]) and panic
    /// on any violated hazard edge. Defaults to on in debug builds (every
    /// test execution is checked) and off in release; set explicitly to
    /// force either way.
    pub validate: bool,
    /// Sampling stride for the validator's sequence recording: only every
    /// `k`-th task (by insertion index) draws and stores its start/end
    /// ticks; hazard edges with an unsampled endpoint are skipped and
    /// censused in [`crate::validate::ValidationSummary::edges_skipped`].
    /// `1` (the default) records everything; larger strides trade coverage
    /// for less contention on the global tick counter in release-mode
    /// validated runs. `0` is treated as `1`.
    pub validate_every: usize,
    /// Aggregate a [`MetricsReport`] onto the report (cheap; default on).
    pub metrics: bool,
    /// Run the pre-execution graph checker (`xgs-analysis`) before any
    /// worker starts: cycle detection over the dependency lists, and a
    /// cross-check that the statically derived hazard-edge set is
    /// element-wise identical to the schedule validator's independently
    /// derived edges. A failure is a graph-construction bug and panics
    /// with the checker's diagnostic. Defaults to on in debug builds and
    /// off in release; `XGS_PRECHECK=1` in the environment opts in
    /// everywhere (see [`precheck_env_default`]).
    pub precheck: bool,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            trace: false,
            policy: SchedPolicy::Priority,
            validate: cfg!(debug_assertions),
            validate_every: 1,
            metrics: true,
            precheck: precheck_env_default(),
        }
    }
}

/// The default for the pre-execution checks ([`ExecOptions::precheck`],
/// `ShardOptions::precheck` in `xgs-cholesky`): on under
/// `debug_assertions`, and opt-in in release builds by setting
/// `XGS_PRECHECK=1` (any value other than `0`/empty counts). Read once
/// and cached for the process lifetime.
pub fn precheck_env_default() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| {
        cfg!(debug_assertions)
            || std::env::var("XGS_PRECHECK")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false)
    })
}

/// The pre-execution check behind [`ExecOptions::precheck`]: acyclicity
/// over the unpacked dependency lists, then element-wise agreement between
/// the statically derived hazard edges (`xgs-analysis`, an independent
/// implementation) and the schedule validator's own derivation. Panics
/// with a task-labelled diagnostic on failure — both conditions are
/// graph-construction bugs, never user errors.
fn precheck_graph(
    dependents: &[Vec<TaskId>],
    accesses: &[Vec<Access>],
    kinds: &[&'static str],
    coords: &[Option<(u32, u32)>],
) {
    let label = |t: usize| -> String {
        let kind = kinds.get(t).copied().unwrap_or("?");
        match coords.get(t).copied().flatten() {
            Some((i, j)) => format!("{kind}({i},{j})#{t}"),
            None => format!("{kind}#{t}"),
        }
    };
    if let Err(e) =
        xgs_analysis::check_acyclic(dependents.len(), |t| dependents[t].iter().map(|d| d.0))
    {
        if let xgs_analysis::GraphError::Cycle(path) = &e {
            let named: Vec<String> = path.iter().map(|&t| label(t)).collect();
            panic!(
                "pre-execution graph check failed: {e} [{}]",
                named.join(" -> ")
            );
        }
        panic!("pre-execution graph check failed: {e}");
    }
    match crate::validate::crosscheck_static_edges(accesses) {
        Ok(_) => {}
        Err(msg) => panic!(
            "pre-execution graph check failed: static hazard edges diverge \
             from the schedule validator's derivation: {msg}"
        ),
    }
}

#[derive(PartialEq, Eq)]
struct ReadyTask {
    priority: i64,
    id: TaskId,
}

impl Ord for ReadyTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by priority; FIFO-ish by id for ties (earlier first).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Map a task's nominal priority to the heap key the policy wants.
fn effective_priority(policy: SchedPolicy, priority: i64, idx: usize) -> i64 {
    match policy {
        SchedPolicy::Priority => priority,
        // FIFO: earlier insertion = higher key (the heap breaks priority
        // ties by id already, so collapse priorities entirely).
        SchedPolicy::Fifo => -(idx as i64),
        SchedPolicy::Lifo => idx as i64,
    }
}

/// Ready queue plus its depth census, updated under the same lock.
struct QueueState {
    heap: BinaryHeap<ReadyTask>,
    depth: QueueDepthStats,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    remaining: AtomicUsize,
    /// Global event counter behind the validator's total order; every task
    /// start and end draws one tick.
    seq: AtomicU64,
}

/// Worker-thread-local accumulation, merged after the pool joins.
struct WorkerScratch {
    busy: f64,
    tasks: u64,
    parks: u64,
    kernels: HashMap<&'static str, KernelStats>,
    trace: Vec<TraceEvent>,
}

/// Execute a task graph on `workers` threads (0 = all logical CPUs) with
/// the default critical-path priority policy.
///
/// `trace` records per-task start/end times (adds a little overhead).
pub fn execute(graph: TaskGraph, workers: usize, trace: bool) -> ExecReport {
    execute_opts(
        graph,
        workers,
        ExecOptions {
            trace,
            ..ExecOptions::default()
        },
    )
}

/// [`execute`] with an explicit [`SchedPolicy`].
pub fn execute_with_policy(
    graph: TaskGraph,
    workers: usize,
    trace: bool,
    policy: SchedPolicy,
) -> ExecReport {
    execute_opts(
        graph,
        workers,
        ExecOptions {
            trace,
            policy,
            ..ExecOptions::default()
        },
    )
}

/// Execute a task graph with full control over tracing, scheduling policy,
/// schedule validation, and metrics collection.
///
/// # Panics
///
/// When [`ExecOptions::validate`] is set and the realized schedule
/// violated a hazard edge — that is a runtime bug, never a user error, so
/// it is fatal by design.
#[allow(clippy::needless_range_loop)]
pub fn execute_opts(graph: TaskGraph, workers: usize, opts: ExecOptions) -> ExecReport {
    let workers = if workers == 0 {
        crate::logical_cores()
    } else {
        workers
    };
    let n = graph.len();
    let conversions_before = conversion_counts();
    // Dynamic race checking (vector clocks over the declared dependency
    // edges): on in debug builds / under XGS_RACE=1. Each run namespaces
    // its per-datum edges and cells under a fresh scope id, retired after
    // the pool joins.
    let race_scope = crate::race::enabled().then(crate::race::new_scope);

    // Unpack the graph into shared, lock-free-readable structures.
    let mut closures: Vec<Option<Box<dyn FnOnce() + Send>>> = Vec::with_capacity(n);
    let mut dependents: Vec<Vec<TaskId>> = Vec::with_capacity(n);
    let mut kinds: Vec<&'static str> = Vec::with_capacity(n);
    let mut coords: Vec<Option<(u32, u32)>> = Vec::with_capacity(n);
    let mut priorities: Vec<i64> = Vec::with_capacity(n);
    let mut dep_counts: Vec<AtomicUsize> = Vec::with_capacity(n);
    let keep_accesses = opts.validate || opts.precheck || race_scope.is_some();
    let mut accesses = Vec::with_capacity(if keep_accesses { n } else { 0 });
    let mut initial_ready: Vec<ReadyTask> = Vec::new();
    for (idx, mut t) in graph.tasks.into_iter().enumerate() {
        closures.push(t.closure.take());
        dependents.push(std::mem::take(&mut t.dependents));
        kinds.push(t.kind);
        coords.push(t.coords);
        priorities.push(t.priority);
        dep_counts.push(AtomicUsize::new(t.n_deps));
        if keep_accesses {
            accesses.push(std::mem::take(&mut t.accesses));
        }
        if t.n_deps == 0 {
            initial_ready.push(ReadyTask {
                priority: effective_priority(opts.policy, t.priority, idx),
                id: TaskId(idx),
            });
        }
    }

    // Pre-execution graph check: prove the graph acyclic (a cycle would
    // hang the pool — the post-run validator can never see it because a
    // cyclic graph never completes) and prove the static hazard-edge
    // derivation agrees with the validator's, before any worker spawns.
    if opts.precheck {
        precheck_graph(&dependents, &accesses, &kinds, &coords);
    }
    // Closures must be callable from any worker; wrap in per-task Mutex-free
    // Option slots guarded by the DAG's exclusivity (each task runs once).
    #[allow(clippy::type_complexity)]
    let closures: Vec<Mutex<Option<Box<dyn FnOnce() + Send>>>> =
        closures.into_iter().map(Mutex::new).collect();

    let shared = Shared {
        queue: Mutex::new(QueueState {
            heap: initial_ready.into_iter().collect(),
            depth: QueueDepthStats::default(),
        }),
        available: Condvar::new(),
        remaining: AtomicUsize::new(n),
        seq: AtomicU64::new(0),
    };
    // Per-task (start_seq, end_seq) slots; every task runs exactly once so
    // each slot is written once. Relaxed suffices: both draws sit inside
    // the happens-before chain the dependency release already establishes,
    // and a single atomic's modification order is consistent with it.
    // Slots start at the UNRECORDED sentinel: a task the sampling stride
    // passes over simply never writes, and the validator skips its edges.
    let validate_every = opts.validate_every.max(1);
    let order: Vec<(AtomicU64, AtomicU64)> = if opts.validate {
        (0..n)
            .map(|_| (AtomicU64::new(UNRECORDED), AtomicU64::new(UNRECORDED)))
            .collect()
    } else {
        Vec::new()
    };

    let start = Instant::now();
    let mut scratches: Vec<WorkerScratch> = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let shared = &shared;
            let closures = &closures;
            let dependents = &dependents;
            let dep_counts = &dep_counts;
            let priorities = &priorities;
            let kinds = &kinds;
            let coords = &coords;
            let order = &order;
            let accesses = &accesses;
            handles.push(scope.spawn(move || {
                let mut scratch = WorkerScratch {
                    busy: 0.0,
                    tasks: 0,
                    parks: 0,
                    kernels: HashMap::new(),
                    trace: Vec::new(),
                };
                'run: loop {
                    // Grab the best ready task or wait for one.
                    let task = {
                        let mut q = shared.queue.lock();
                        loop {
                            if shared.remaining.load(Ordering::Acquire) == 0 {
                                break 'run;
                            }
                            if let Some(t) = q.heap.pop() {
                                let depth = q.heap.len();
                                q.depth.sample(depth);
                                break t;
                            }
                            scratch.parks += 1;
                            shared.available.wait(&mut q);
                        }
                    };
                    // Sampled recording: unsampled tasks skip both tick
                    // draws entirely (their slots keep the UNRECORDED
                    // sentinel), so the counter costs nothing for them.
                    let sampled = task.id.0 % validate_every == 0;
                    let start_seq = if sampled {
                        shared.seq.fetch_add(1, Ordering::Relaxed)
                    } else {
                        UNRECORDED
                    };
                    // Race model: inherit the per-datum edges this task's
                    // predecessors released, then declare the accesses.
                    // Acquires must precede the access checks — the edge
                    // is what orders this task after its predecessors.
                    if let Some(rs) = race_scope {
                        use crate::graph::AccessMode;
                        for a in &accesses[task.id.0] {
                            crate::race::acquire(crate::race::SPACE_EXEC, rs, a.data.0);
                        }
                        for a in &accesses[task.id.0] {
                            match a.mode {
                                AccessMode::Read => {
                                    crate::race::read(crate::race::SPACE_EXEC, rs, a.data.0)
                                }
                                AccessMode::Write => {
                                    crate::race::write(crate::race::SPACE_EXEC, rs, a.data.0)
                                }
                            }
                        }
                    }
                    let t0 = start.elapsed().as_secs_f64();
                    if let Some(f) = closures[task.id.0].lock().take() {
                        f();
                    }
                    let t1 = start.elapsed().as_secs_f64();
                    // Publish this task's effects on its data *before* any
                    // dependent can be released below — a successor that
                    // starts without this edge in its clock is exactly the
                    // race the checker exists to catch.
                    if let Some(rs) = race_scope {
                        for a in &accesses[task.id.0] {
                            crate::race::release(crate::race::SPACE_EXEC, rs, a.data.0);
                        }
                    }
                    // The end tick must be drawn before dependents are
                    // released, or a successor could legitimately start
                    // "before" its predecessor finished.
                    if sampled {
                        let end_seq = shared.seq.fetch_add(1, Ordering::Relaxed);
                        if let Some((s, e)) = order.get(task.id.0) {
                            s.store(start_seq, Ordering::Relaxed);
                            e.store(end_seq, Ordering::Relaxed);
                        }
                    }
                    scratch.busy += t1 - t0;
                    scratch.tasks += 1;
                    let kind = kinds[task.id.0];
                    if opts.metrics {
                        scratch
                            .kernels
                            .entry(kind)
                            .or_insert_with(|| KernelStats::new(kind))
                            .record(t1 - t0);
                    }
                    if opts.trace {
                        scratch.trace.push(TraceEvent {
                            task: task.id,
                            kind,
                            coords: coords[task.id.0],
                            worker: w,
                            start: t0,
                            end: t1,
                        });
                    }

                    // Release dependents.
                    let mut newly_ready = Vec::new();
                    for &dep in &dependents[task.id.0] {
                        if dep_counts[dep.0].fetch_sub(1, Ordering::AcqRel) == 1 {
                            newly_ready.push(ReadyTask {
                                priority: effective_priority(opts.policy, priorities[dep.0], dep.0),
                                id: dep,
                            });
                        }
                    }
                    let finished = shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1;
                    if !newly_ready.is_empty() {
                        let mut q = shared.queue.lock();
                        for r in newly_ready {
                            q.heap.push(r);
                        }
                        let depth = q.heap.len();
                        q.depth.sample(depth);
                        drop(q);
                        shared.available.notify_all();
                    }
                    if finished {
                        // Take the queue lock before notifying: a waiter is
                        // then either before its remaining-check (and will
                        // observe 0) or already parked (and gets the
                        // notification) — no lost wakeup.
                        drop(shared.queue.lock());
                        shared.available.notify_all();
                        break 'run;
                    }
                }
                scratch
            }));
        }
        for h in handles {
            scratches.push(h.join().expect("worker thread panicked"));
        }
    });

    let wall = start.elapsed().as_secs_f64();

    if let Some(rs) = race_scope {
        crate::race::retire(crate::race::SPACE_EXEC, rs);
    }

    let validation = if opts.validate {
        let order: Vec<TaskOrder> = order
            .iter()
            .map(|(s, e)| TaskOrder {
                start_seq: s.load(Ordering::Relaxed),
                end_seq: e.load(Ordering::Relaxed),
            })
            .collect();
        match check_schedule(&accesses, &order) {
            Ok(summary) => Some(summary),
            Err(violations) => {
                let labels: Vec<String> = kinds
                    .iter()
                    .zip(&coords)
                    .map(|(k, c)| match c {
                        Some((i, j)) => format!("{k}[{i},{j}]"),
                        None => (*k).to_string(),
                    })
                    .collect();
                panic!(
                    "executor bug under {:?} policy with {} worker(s): {}",
                    opts.policy,
                    workers,
                    describe_violations(&violations, &labels)
                );
            }
        }
    } else {
        None
    };

    let busy_seconds: Vec<f64> = scratches.iter().map(|s| s.busy).collect();
    let mut trace_events: Vec<TraceEvent> = Vec::new();
    if opts.trace {
        for s in &mut scratches {
            trace_events.append(&mut s.trace);
        }
        trace_events.sort_by(|a, b| a.start.total_cmp(&b.start));
    }

    let metrics = opts.metrics.then(|| {
        let mut kernels: HashMap<&'static str, KernelStats> = HashMap::new();
        for s in &scratches {
            for (kind, ks) in &s.kernels {
                kernels
                    .entry(kind)
                    .or_insert_with(|| KernelStats::new(kind))
                    .merge(ks);
            }
        }
        let mut kernels: Vec<KernelStats> = kernels.into_values().collect();
        kernels.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
        MetricsReport {
            wall_seconds: wall,
            tasks: n,
            workers,
            kernels,
            queue_depth: shared.queue.into_inner().depth,
            worker_stats: scratches
                .iter()
                .map(|s| WorkerStats {
                    busy_seconds: s.busy,
                    tasks: s.tasks,
                    parks: s.parks,
                })
                .collect(),
            conversions: conversion_counts().since(&conversions_before),
            wire: Vec::new(),
            validation,
            pool: None,
        }
    });

    ExecReport {
        wall_seconds: wall,
        tasks: n,
        workers,
        busy_seconds,
        trace: trace_events,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, DataId};
    use std::sync::atomic::{AtomicU64, Ordering as AOrd};
    use std::sync::Arc;

    #[test]
    fn executes_every_task_exactly_once() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut g = TaskGraph::new();
        for i in 0..500 {
            let c = counter.clone();
            g.insert(
                "inc",
                vec![Access::write(DataId(i % 7))],
                0,
                0.0,
                move || {
                    c.fetch_add(1, AOrd::Relaxed);
                },
            );
        }
        let report = execute(g, 4, false);
        assert_eq!(counter.load(AOrd::Relaxed), 500);
        assert_eq!(report.tasks, 500);
    }

    #[test]
    fn dependency_order_respected_under_parallelism() {
        // A chain through one datum must observe strictly increasing values.
        let value = Arc::new(AtomicU64::new(0));
        let ok = Arc::new(AtomicU64::new(1));
        let mut g = TaskGraph::new();
        let d = DataId(0);
        for i in 0..200u64 {
            let v = value.clone();
            let ok = ok.clone();
            g.insert("step", vec![Access::write(d)], 0, 0.0, move || {
                let prev = v.swap(i + 1, AOrd::SeqCst);
                if prev != i {
                    ok.store(0, AOrd::SeqCst);
                }
            });
        }
        execute(g, 8, false);
        assert_eq!(ok.load(AOrd::SeqCst), 1, "chain ran out of order");
    }

    #[test]
    fn parallel_matches_sequential_result() {
        // Random DAG over 16 data cells doing deterministic arithmetic:
        // result must equal the 1-worker execution.
        fn build(values: Arc<Vec<AtomicU64>>) -> TaskGraph {
            let mut g = TaskGraph::new();
            let mut seed = 12345u64;
            for _ in 0..400 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = (seed >> 10) as usize % 16;
                let b = (seed >> 20) as usize % 16;
                let v = values.clone();
                g.insert(
                    "mix",
                    vec![
                        Access::read(DataId(a as u64)),
                        Access::write(DataId(b as u64)),
                    ],
                    0,
                    0.0,
                    move || {
                        let x = v[a].load(AOrd::SeqCst);
                        let y = v[b].load(AOrd::SeqCst);
                        v[b].store(y.wrapping_mul(31).wrapping_add(x ^ 0x9E37), AOrd::SeqCst);
                    },
                );
            }
            g
        }
        let seq: Arc<Vec<AtomicU64>> = Arc::new((0..16).map(AtomicU64::new).collect());
        execute(build(seq.clone()), 1, false);
        let par: Arc<Vec<AtomicU64>> = Arc::new((0..16).map(AtomicU64::new).collect());
        execute(build(par.clone()), 8, false);
        for i in 0..16 {
            assert_eq!(
                seq[i].load(AOrd::SeqCst),
                par[i].load(AOrd::SeqCst),
                "cell {i}"
            );
        }
    }

    #[test]
    fn priorities_order_ready_tasks_on_single_worker() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        for (i, prio) in [(0u64, 1i64), (1, 5), (2, 3)] {
            let o = order.clone();
            g.insert("p", vec![Access::write(DataId(i))], prio, 0.0, move || {
                o.lock().push(prio);
            });
        }
        execute(g, 1, false);
        assert_eq!(*order.lock(), vec![5, 3, 1]);
    }

    #[test]
    fn trace_covers_all_tasks() {
        let mut g = TaskGraph::new();
        for i in 0..50 {
            g.insert("t", vec![Access::write(DataId(i))], 0, 0.0, || {
                std::hint::black_box(0u64);
            });
        }
        let r = execute(g, 3, true);
        assert_eq!(r.trace.len(), 50);
        assert!(r.trace.iter().all(|e| e.end >= e.start));
        assert!(r.efficiency() <= 1.0 + 1e-9);
        assert!(r.imbalance() >= 1.0 - 1e-9);
    }

    #[test]
    fn empty_graph_returns_clean_report() {
        let r = execute(TaskGraph::new(), 2, true);
        assert_eq!(r.tasks, 0);
        assert!(r.trace.is_empty());
        // Sentinel contract: no NaNs out of the degenerate report.
        assert_eq!(r.imbalance(), 1.0);
        let e = r.efficiency();
        assert!(e.is_finite() && (0.0..=1.0).contains(&e), "efficiency {e}");
    }

    #[test]
    fn zero_busy_report_has_sentinel_ratios() {
        // Hand-built report: positive wall, no recorded busy time.
        let r = ExecReport {
            wall_seconds: 1.0,
            tasks: 0,
            workers: 4,
            busy_seconds: vec![0.0; 4],
            trace: Vec::new(),
            metrics: None,
        };
        assert_eq!(r.imbalance(), 1.0);
        assert_eq!(r.efficiency(), 0.0);
        // And the fully degenerate case: zero wall, zero workers.
        let z = ExecReport {
            wall_seconds: 0.0,
            tasks: 0,
            workers: 0,
            busy_seconds: Vec::new(),
            trace: Vec::new(),
            metrics: None,
        };
        assert_eq!(z.imbalance(), 1.0);
        assert_eq!(z.efficiency(), 1.0);
    }

    #[test]
    fn single_worker_report_is_balanced() {
        let mut g = TaskGraph::new();
        for i in 0..20 {
            g.insert("t", vec![Access::write(DataId(i))], 0, 0.0, || {
                std::hint::black_box((0..100u64).sum::<u64>());
            });
        }
        let r = execute(g, 1, false);
        assert_eq!(r.workers, 1);
        // One worker: max == mean, imbalance exactly 1.0 (or the zero-busy
        // sentinel, also 1.0).
        assert_eq!(r.imbalance(), 1.0);
        assert!(r.efficiency().is_finite());
    }

    #[test]
    fn wide_fan_uses_multiple_workers() {
        // 64 independent 2ms sleeps on 8 workers: multiple workers must
        // participate and the wall time must beat the 128ms serial time
        // with margin. (Sleeps overlap even on one CPU; the generous bound
        // keeps the test stable when the host is otherwise loaded.)
        let mut g = TaskGraph::new();
        for i in 0..64 {
            g.insert("sleep", vec![Access::write(DataId(i))], 0, 0.0, || {
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
        }
        let r = execute(g, 8, true);
        let distinct: std::collections::HashSet<usize> = r.trace.iter().map(|e| e.worker).collect();
        assert!(
            distinct.len() >= 2,
            "only {} worker(s) ran tasks",
            distinct.len()
        );
        assert!(
            r.wall_seconds < 0.100,
            "no parallelism observed: {}s for 128ms of serial sleeps",
            r.wall_seconds
        );
    }

    #[test]
    fn metrics_cover_kernels_workers_and_queue() {
        let mut g = TaskGraph::new();
        let d = DataId(0);
        for i in 0..40u64 {
            let kind = if i % 2 == 0 { "even" } else { "odd" };
            g.insert(
                kind,
                vec![Access::write(DataId(i % 5)), Access::read(d)],
                0,
                0.0,
                || {
                    std::hint::black_box((0..500u64).sum::<u64>());
                },
            );
        }
        let r = execute_opts(
            g,
            3,
            ExecOptions {
                validate: true,
                ..ExecOptions::default()
            },
        );
        let m = r.metrics.expect("metrics on by default");
        assert_eq!(m.tasks, 40);
        assert_eq!(m.workers, 3);
        assert_eq!(m.worker_stats.len(), 3);
        assert_eq!(m.kernels.iter().map(|k| k.count).sum::<u64>(), 40);
        let kinds: Vec<&str> = m.kernels.iter().map(|k| k.kind).collect();
        assert!(kinds.contains(&"even") && kinds.contains(&"odd"));
        assert_eq!(m.worker_stats.iter().map(|w| w.tasks).sum::<u64>(), 40);
        assert!(m.queue_depth.samples > 0);
        let v = m.validation.expect("validator requested");
        assert!(v.edges_checked > 0, "shared read datum must create edges");
        // The JSON export round-trips the structure without NaNs.
        let json = m.to_json();
        assert!(json.contains("\"tasks\":40"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn metrics_opt_out_leaves_report_lean() {
        let mut g = TaskGraph::new();
        g.insert("t", vec![Access::write(DataId(0))], 0, 0.0, || {});
        let r = execute_opts(
            g,
            1,
            ExecOptions {
                metrics: false,
                validate: false,
                ..ExecOptions::default()
            },
        );
        assert!(r.metrics.is_none());
    }

    #[test]
    fn sampled_validation_skips_edges_but_passes() {
        // A write chain over one datum: 99 consecutive WAW edges. With a
        // stride of 3, consecutive tasks are never both sampled, so every
        // edge lands in edges_skipped; the run must still pass cleanly.
        let mut g = TaskGraph::new();
        for _ in 0..100u64 {
            g.insert("w", vec![Access::write(DataId(0))], 0, 0.0, || {});
        }
        let r = execute_opts(
            g,
            4,
            ExecOptions {
                validate: true,
                validate_every: 3,
                ..ExecOptions::default()
            },
        );
        let v = r.metrics.unwrap().validation.unwrap();
        assert_eq!(v.edges_checked, 0);
        assert_eq!(v.edges_skipped, 99);

        // Stride 1 through the same machinery checks everything.
        let mut g = TaskGraph::new();
        for _ in 0..100u64 {
            g.insert("w", vec![Access::write(DataId(0))], 0, 0.0, || {});
        }
        let r = execute_opts(
            g,
            4,
            ExecOptions {
                validate: true,
                validate_every: 1,
                ..ExecOptions::default()
            },
        );
        let v = r.metrics.unwrap().validation.unwrap();
        assert_eq!(v.edges_checked, 99);
        assert_eq!(v.edges_skipped, 0);
    }

    #[test]
    fn validate_every_zero_is_treated_as_one() {
        let mut g = TaskGraph::new();
        for i in 0..10u64 {
            g.insert("t", vec![Access::write(DataId(i % 2))], 0, 0.0, || {});
        }
        let r = execute_opts(
            g,
            2,
            ExecOptions {
                validate: true,
                validate_every: 0,
                ..ExecOptions::default()
            },
        );
        let v = r.metrics.unwrap().validation.unwrap();
        assert_eq!(v.edges_skipped, 0);
        assert_eq!(v.edges_checked, 8);
    }

    #[test]
    fn validator_runs_on_every_policy() {
        for policy in [SchedPolicy::Priority, SchedPolicy::Fifo, SchedPolicy::Lifo] {
            let mut g = TaskGraph::new();
            let d = DataId(9);
            for i in 0..100u64 {
                g.insert(
                    "t",
                    vec![Access::write(DataId(i % 11)), Access::read(d)],
                    (i % 3) as i64,
                    0.0,
                    || {},
                );
                if i % 10 == 0 {
                    g.insert("w", vec![Access::write(d)], 0, 0.0, || {});
                }
            }
            let r = execute_opts(
                g,
                4,
                ExecOptions {
                    policy,
                    validate: true,
                    ..ExecOptions::default()
                },
            );
            let v = r.metrics.unwrap().validation.unwrap();
            assert!(v.edges_checked > 0, "{policy:?}: no edges checked");
        }
    }

    #[test]
    fn coords_flow_into_the_trace() {
        let mut g = TaskGraph::new();
        g.insert_at(
            "potrf",
            (2, 2),
            vec![Access::write(DataId(0))],
            0,
            0.0,
            || {},
        );
        g.insert("aux", vec![Access::write(DataId(1))], 0, 0.0, || {});
        let r = execute(g, 1, true);
        let potrf = r.trace.iter().find(|e| e.kind == "potrf").unwrap();
        assert_eq!(potrf.coords, Some((2, 2)));
        let aux = r.trace.iter().find(|e| e.kind == "aux").unwrap();
        assert_eq!(aux.coords, None);
    }
}

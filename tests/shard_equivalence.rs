//! Cross-process equivalence suite for the sharded tile Cholesky.
//!
//! These tests spawn *real* worker processes of the `exageostat` binary
//! (via `CARGO_BIN_EXE`) and prove the paper-level claim behind the
//! multi-process backend: the 2D block-cyclic distribution changes where
//! tile kernels run, never what they compute. The factor must be bitwise
//! identical to the single-process sequential reference, predictions
//! served through a `--shards` server must be checksum-identical to an
//! unsharded server, and a lost or wedged worker must surface as a clean
//! error within the deadline — never a hang, never a poisoned registry.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use exageostat_rs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xgs_cholesky::{
    spawn_workers, ShardBackend, ShardError, ShardOptions, ShardRunner, TiledFactor,
};
use xgs_fleet::{FleetConfig, Supervisor};
use xgs_server::{loadgen, LoadgenConfig, ModelRegistry, ServerConfig};

const EXE: &str = env!("CARGO_BIN_EXE_exageostat");

fn matrix(n: usize, nb: usize, seed: u64, variant: Variant) -> SymTileMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut locs = jittered_grid(n, &mut rng);
    morton_order(&mut locs);
    let kernel = Matern::new(MaternParams::new(1.0, 0.1, 0.5));
    SymTileMatrix::generate(
        &kernel,
        &locs,
        TlrConfig::new(variant, nb),
        &FlopKernelModel::default(),
    )
}

fn assert_bitwise_equal(a: &Matrix, b: &Matrix, context: &str) {
    assert_eq!(a.rows(), b.rows(), "{context}");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i} diverged ({x} vs {y})"
        );
    }
}

/// The tentpole guarantee: for several problem sizes, tile grids and
/// process grids — square, rectangular, and more workers than tiles — a
/// factorization fanned out over worker *processes* reproduces the
/// sequential single-process factor bit for bit, and executes exactly the
/// full DAG's task census.
#[test]
fn sharded_factor_is_bitwise_equal_across_process_grids() {
    let shapes: &[(usize, usize, usize, Variant)] = &[
        (300, 50, 4, Variant::DenseF64), // 6x6 tiles on a 2x2 grid
        (260, 64, 3, Variant::MpDense),  // mixed precision on a 1x3 grid
        (150, 40, 6, Variant::DenseF64), // 4x4 tiles on a 2x3 grid
        (130, 70, 4, Variant::MpDense),  // 2x2 tiles on a 2x2 grid: some workers idle
    ];
    for &(n, nb, shards, variant) in shapes {
        let context = format!("n={n} nb={nb} shards={shards} {variant:?}");
        let mut reference = TiledFactor::from_matrix(matrix(n, nb, 11, variant));
        reference.factorize_seq().unwrap();

        let mut sharded = TiledFactor::from_matrix(matrix(n, nb, 11, variant));
        let mut fleet = spawn_workers(Path::new(EXE), shards, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("{context}: spawn failed: {e}"));
        let rep = sharded
            .factorize_sharded(fleet.take_streams(), &ShardOptions::for_workers(shards))
            .unwrap_or_else(|e| panic!("{context}: sharded factorization failed: {e}"));

        assert_bitwise_equal(
            &reference.to_dense_lower(),
            &sharded.to_dense_lower(),
            &context,
        );
        let nt = n.div_ceil(nb);
        let dag_tasks = nt + nt * (nt - 1) / 2 + nt * (nt * nt - 1) / 6;
        assert_eq!(rep.metrics.tasks, dag_tasks, "{context}");
        assert_eq!(
            rep.worker_tasks.iter().sum::<u64>() as usize,
            dag_tasks,
            "{context}: per-worker census must sum to the DAG"
        );
    }
}

fn run_cli(args: &[&str]) -> String {
    let out = std::process::Command::new(EXE).args(args).output().unwrap();
    assert!(
        out.status.success(),
        "exageostat {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// `predict --shards 4` through the CLI: same log-likelihood line and
/// byte-identical prediction CSV as the single-process run, and stable
/// across five repetitions (the determinism sweep).
#[test]
fn cli_predict_with_shards_matches_single_process_five_times() {
    let dir = std::env::temp_dir().join(format!("xgs-shardeq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.csv");
    let data_s = data.to_str().unwrap();
    run_cli(&[
        "simulate",
        "--n",
        "300",
        "--params",
        "1.0,0.1,0.5",
        "--seed",
        "21",
        "--out",
        data_s,
    ]);

    let base_out = dir.join("pred-base.csv");
    let base_stdout = run_cli(&[
        "predict",
        "--data",
        data_s,
        "--targets",
        data_s,
        "--theta",
        "1.0,0.1,0.5",
        "--tile",
        "64",
        "--uncertainty",
        "--out",
        base_out.to_str().unwrap(),
    ]);
    let base_csv = std::fs::read(&base_out).unwrap();
    let base_llh = base_stdout.lines().next().unwrap().to_string();

    for round in 0..5 {
        let out = dir.join(format!("pred-shard-{round}.csv"));
        let stdout = run_cli(&[
            "predict",
            "--data",
            data_s,
            "--targets",
            data_s,
            "--theta",
            "1.0,0.1,0.5",
            "--tile",
            "64",
            "--shards",
            "4",
            "--uncertainty",
            "--out",
            out.to_str().unwrap(),
        ]);
        assert_eq!(
            stdout.lines().next().unwrap(),
            base_llh,
            "round {round}: llh line diverged"
        );
        assert_eq!(
            std::fs::read(&out).unwrap(),
            base_csv,
            "round {round}: prediction CSV diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn roundtrip(conn: &mut TcpStream, line: &str) -> String {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    resp
}

/// `load` + `predict` through a server whose factorizations fan out to
/// real worker processes: every response checksum must match the
/// unsharded server's answer on the same request stream.
#[test]
fn sharded_server_predictions_are_checksum_identical_to_unsharded() {
    let mut rng = StdRng::seed_from_u64(91);
    let locs = jittered_grid(150, &mut rng);
    let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
    let z = simulate_field(kernel.as_ref(), &locs, 92);
    let locs_json: String = locs
        .iter()
        .map(|l| format!("[{},{}]", l.x, l.y))
        .collect::<Vec<_>>()
        .join(",");
    let z_json: String = z.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
    let load_line = format!(
        "{{\"op\":\"load\",\"name\":\"m\",\"theta\":[1.0,0.1,0.5],\
         \"variant\":\"dense\",\"tile\":48,\"locs\":[{locs_json}],\"z\":[{z_json}]}}"
    );

    let run_one = |shard: Option<Arc<dyn ShardBackend>>| -> u64 {
        let cfg = ServerConfig {
            shard,
            ..Default::default()
        };
        let handle = xgs_server::serve(&cfg, Arc::new(ModelRegistry::new())).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        let resp = roundtrip(&mut conn, &load_line);
        assert!(resp.contains("\"ok\":true"), "load failed: {resp}");
        let report = loadgen::run(&LoadgenConfig {
            addr: handle.addr().to_string(),
            model: "m".to_string(),
            requests: 30,
            conns: 3,
            points: 4,
            seed: 7,
            uncertainty: true,
            shutdown: true,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(report.errors, 0, "{}", report.summary());
        handle.join();
        report.checksum
    };

    let unsharded = run_one(None);
    let sharded = run_one(Some(Arc::new(ShardRunner::new(EXE.into(), 2))));
    assert_eq!(
        unsharded, sharded,
        "sharded factorization changed served predictions"
    );
}

/// Fault injection: SIGKILL a worker and prove the coordinator answers
/// with a clean error well within the deadline, and that a fresh fleet
/// afterwards is unaffected (one factorization's crash cannot poison the
/// next).
#[test]
fn killed_worker_fails_cleanly_within_deadline() {
    let shards = 4;
    let deadline = Duration::from_secs(30);

    // Kill before the first frame: the coordinator must detect the lost
    // worker during the run, not block until the deadline.
    let mut fleet = spawn_workers(Path::new(EXE), shards, Duration::from_secs(30)).unwrap();
    let streams = fleet.take_streams();
    fleet.kill_worker(2).unwrap();
    let mut f = TiledFactor::from_matrix(matrix(300, 50, 13, Variant::DenseF64));
    let opts = ShardOptions {
        deadline,
        ..ShardOptions::for_workers(shards)
    };
    let t0 = Instant::now();
    let err = f
        .factorize_sharded(streams, &opts)
        .expect_err("a dead worker cannot produce a factor");
    assert!(
        matches!(
            err,
            ShardError::WorkerLost { .. } | ShardError::Timeout { .. }
        ),
        "unexpected error class: {err}"
    );
    assert!(
        t0.elapsed() < deadline,
        "took {:?}, deadline {deadline:?}",
        t0.elapsed()
    );

    // Kill mid-flight on a second fleet: either the coordinator aborts
    // cleanly, or (if the run already finished) the factor is still exact.
    let mut fleet = spawn_workers(Path::new(EXE), shards, Duration::from_secs(30)).unwrap();
    let streams = fleet.take_streams();
    let opts2 = opts;
    let handle = std::thread::spawn(move || {
        let mut f = TiledFactor::from_matrix(matrix(600, 40, 13, Variant::DenseF64));
        let res = f.factorize_sharded(streams, &opts2);
        (res, f)
    });
    std::thread::sleep(Duration::from_millis(5));
    fleet.kill_worker(1).unwrap();
    let t1 = Instant::now();
    let (res, f) = handle.join().unwrap();
    assert!(
        t1.elapsed() < deadline,
        "mid-flight kill stalled the coordinator for {:?}",
        t1.elapsed()
    );
    if res.is_ok() {
        let mut reference = TiledFactor::from_matrix(matrix(600, 40, 13, Variant::DenseF64));
        reference.factorize_seq().unwrap();
        assert_bitwise_equal(&reference.to_dense_lower(), &f.to_dense_lower(), "survivor");
    }

    // Recovery: a fresh fleet after both crashes still matches sequential.
    let mut reference = TiledFactor::from_matrix(matrix(200, 50, 14, Variant::DenseF64));
    reference.factorize_seq().unwrap();
    let mut again = TiledFactor::from_matrix(matrix(200, 50, 14, Variant::DenseF64));
    let mut fleet = spawn_workers(Path::new(EXE), shards, Duration::from_secs(30)).unwrap();
    again
        .factorize_sharded(fleet.take_streams(), &opts)
        .expect("fresh fleet after a crash");
    assert_bitwise_equal(
        &reference.to_dense_lower(),
        &again.to_dense_lower(),
        "recovery",
    );
}

/// Count live processes whose command line mentions `needle` — the
/// supervisor's registration address is unique per test, so this is the
/// orphan check: after the fleet drops, no worker of that fleet may
/// survive.
fn procs_mentioning(needle: &str) -> usize {
    let mut n = 0;
    let Ok(dir) = std::fs::read_dir("/proc") else {
        return 0;
    };
    for entry in dir.flatten() {
        let cmdline = entry.path().join("cmdline");
        if let Ok(bytes) = std::fs::read(&cmdline) {
            let line = String::from_utf8_lossy(&bytes).replace('\0', " ");
            if line.contains(needle) && line.contains("worker") {
                n += 1;
            }
        }
    }
    n
}

fn event_count(rep: &xgs_cholesky::ShardReport, kind: &str) -> u64 {
    rep.metrics
        .kernels
        .iter()
        .find(|k| k.kind == kind)
        .map_or(0, |k| k.count)
}

/// The fault matrix over *real* worker processes: SIGKILL one worker at
/// each phase of a warm-fleet factorization — while the coordinator is
/// still seeding, mid-panel, and during the end-of-run gather — and
/// assert the recovered factor is bitwise-equal to sequential, the run
/// finishes within deadline, the lifecycle events are in the metrics,
/// and no orphan worker process survives the fleet.
#[test]
fn warm_fleet_survives_sigkill_at_every_phase() {
    let deadline = Duration::from_secs(60);
    let mut reference = TiledFactor::from_matrix(matrix(300, 50, 13, Variant::DenseF64));
    reference.factorize_seq().unwrap();

    // Phase 1 — seeding: the worker is already dead when the coordinator
    // starts sending HELLO/seed frames (killed while idle in the pool;
    // members 0..3 are the grid, member 4 the standby).
    {
        let mut cfg = FleetConfig::process(EXE.into(), 4);
        cfg.standbys = 1;
        cfg.deadline = deadline;
        cfg.heartbeat_every = Duration::from_secs(3600); // kill beats the monitor
        let fleet = Supervisor::start(cfg).unwrap();
        let addr = fleet.addr().to_string();
        assert!(fleet.kill_member(1), "grid member 1 must exist");
        let t0 = Instant::now();
        let mut f = TiledFactor::from_matrix(matrix(300, 50, 13, Variant::DenseF64));
        let rep = fleet.factorize(&mut f).expect("seeding-phase death");
        assert!(t0.elapsed() < deadline, "took {:?}", t0.elapsed());
        assert_bitwise_equal(&reference.to_dense_lower(), &f.to_dense_lower(), "seeding");
        assert_eq!(event_count(&rep, "worker_death"), 1, "seeding");
        assert_eq!(event_count(&rep, "standby_promote"), 1, "seeding");
        drop(fleet);
        assert_eq!(procs_mentioning(&addr), 0, "seeding: orphan workers");
    }

    // Phase 2 — mid-panel: member 3 SIGKILLs itself on receipt of its
    // fourth TASK (a trailing-update/panel boundary), forcing a replay of
    // the affected panel's tasks from the last published tile versions.
    {
        let mut cfg = FleetConfig::process(EXE.into(), 4);
        cfg.deadline = deadline;
        cfg.env = vec![(
            "XGS_CHAOS_ABORT".to_string(),
            "member=3,tasks=3".to_string(),
        )];
        let fleet = Supervisor::start(cfg).unwrap();
        let addr = fleet.addr().to_string();
        let t0 = Instant::now();
        let mut f = TiledFactor::from_matrix(matrix(300, 50, 13, Variant::DenseF64));
        let rep = fleet.factorize(&mut f).expect("mid-panel death");
        assert!(t0.elapsed() < deadline, "took {:?}", t0.elapsed());
        assert_bitwise_equal(
            &reference.to_dense_lower(),
            &f.to_dense_lower(),
            "mid-panel",
        );
        assert_eq!(event_count(&rep, "worker_death"), 1, "mid-panel");
        assert!(event_count(&rep, "panel_replay") >= 1, "mid-panel");
        // No standby registered: recovery respawned locally.
        assert_eq!(event_count(&rep, "standby_promote"), 0, "mid-panel");
        drop(fleet);
        assert_eq!(procs_mentioning(&addr), 0, "mid-panel: orphan workers");
    }

    // Phase 3 — gather: member 2 dies on the drain heartbeat, after its
    // last task. The departed-worker path: no replacement, no replay, the
    // factor is already complete and exact.
    {
        let mut cfg = FleetConfig::process(EXE.into(), 4);
        cfg.deadline = deadline;
        cfg.heartbeat_every = Duration::from_secs(3600); // only the drain pings
        cfg.env = vec![(
            "XGS_CHAOS_ABORT".to_string(),
            "member=2,on=drain".to_string(),
        )];
        let fleet = Supervisor::start(cfg).unwrap();
        let addr = fleet.addr().to_string();
        let t0 = Instant::now();
        let mut f = TiledFactor::from_matrix(matrix(300, 50, 13, Variant::DenseF64));
        let rep = fleet.factorize(&mut f).expect("gather-phase death");
        assert!(t0.elapsed() < deadline, "took {:?}", t0.elapsed());
        assert_bitwise_equal(&reference.to_dense_lower(), &f.to_dense_lower(), "gather");
        assert_eq!(event_count(&rep, "worker_death"), 1, "gather");
        assert_eq!(event_count(&rep, "panel_replay"), 0, "gather");
        drop(fleet);
        assert_eq!(procs_mentioning(&addr), 0, "gather: orphan workers");
    }
}

/// Satellite regression: a `worker --connect` whose supervisor never
/// acknowledges the JOIN must exit nonzero with a diagnostic within its
/// handshake budget — never block forever on the fresh socket.
#[test]
fn worker_without_join_ack_exits_nonzero_with_diagnostic() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // Accept and go silent: no ASSIGN ever comes.
    let silent = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

    let t0 = Instant::now();
    let out = std::process::Command::new(EXE)
        .args(["worker", "--connect", &addr, "--handshake-timeout", "1"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "worker must fail when the JOIN is never acknowledged"
    );
    assert!(
        stderr.contains("no JOIN acknowledgement"),
        "diagnostic missing: {stderr}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "worker blocked {:?} past its handshake budget",
        t0.elapsed()
    );
    drop(silent.join());
}

/// Fault injection: a worker that answers with a *half-written* tile frame
/// and then stalls forever. The coordinator must expire its deadline and
/// return `Timeout` instead of blocking on the truncated frame.
#[test]
fn half_written_tile_frame_times_out_instead_of_hanging() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let conn = TcpStream::connect(addr).unwrap();
    let (srv, _) = listener.accept().unwrap();

    // Fake worker: consume frames until the first TASK (kind 3), then
    // emit a TILE frame header (kind 2) promising 64 payload bytes, send
    // only 10, and wedge.
    let _fake = std::thread::spawn(move || {
        let mut s = srv;
        loop {
            let Ok((kind, _payload)) =
                xgs_runtime::read_frame(&mut s, Some(Duration::from_secs(60)), None)
            else {
                return;
            };
            if kind == 3 {
                let mut partial = Vec::new();
                partial.extend_from_slice(&64u32.to_le_bytes());
                partial.push(2);
                partial.extend_from_slice(&[0u8; 10]);
                if s.write_all(&partial).is_ok() {
                    let _ = s.flush();
                }
                std::thread::sleep(Duration::from_secs(600));
                return;
            }
        }
    });

    let mut f = TiledFactor::from_matrix(matrix(120, 40, 17, Variant::DenseF64));
    let opts = ShardOptions {
        grid_p: 1,
        grid_q: 1,
        deadline: Duration::from_secs(2),
        validate: false,
        precheck: true,
        persistent: false,
    };
    let t0 = Instant::now();
    let err = f
        .factorize_sharded(vec![conn], &opts)
        .expect_err("a truncated frame cannot complete a factorization");
    assert!(
        matches!(
            err,
            ShardError::Timeout { .. } | ShardError::WorkerLost { .. }
        ),
        "unexpected error class: {err}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(15),
        "coordinator hung {:?} on a half-written frame",
        t0.elapsed()
    );
}

/// A sharded server whose worker executable cannot start answers `load`
/// with `ok:false` and keeps serving: the registry is never poisoned by a
/// failed factorization.
#[test]
fn sharded_server_survives_a_broken_worker_executable() {
    let cfg = ServerConfig {
        shard: Some(Arc::new(ShardRunner::new(
            "/nonexistent/xgs-worker".into(),
            2,
        ))),
        ..Default::default()
    };
    let handle = xgs_server::serve(&cfg, Arc::new(ModelRegistry::new())).unwrap();
    let mut conn = TcpStream::connect(handle.addr()).unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    let locs = jittered_grid(60, &mut rng);
    let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
    let z = simulate_field(kernel.as_ref(), &locs, 6);
    let locs_json: String = locs
        .iter()
        .map(|l| format!("[{},{}]", l.x, l.y))
        .collect::<Vec<_>>()
        .join(",");
    let z_json: String = z.iter().map(f64::to_string).collect::<Vec<_>>().join(",");
    let resp = roundtrip(
        &mut conn,
        &format!(
            "{{\"op\":\"load\",\"name\":\"doomed\",\"theta\":[1.0,0.1,0.5],\
             \"variant\":\"dense\",\"tile\":32,\"locs\":[{locs_json}],\"z\":[{z_json}]}}"
        ),
    );
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("factorization failed"), "{resp}");

    // The failed load left nothing behind and the server still answers.
    let models = roundtrip(&mut conn, "{\"op\":\"models\"}");
    assert!(models.contains("\"models\":[]"), "{models}");
    let pong = roundtrip(&mut conn, "{\"op\":\"ping\"}");
    assert!(pong.contains("\"ok\":true"), "{pong}");

    handle.shutdown();
    handle.join();
}

//! Adversarial scenarios specific to the epoll reactor frontend: abuses
//! that only exist because one event loop owns every socket — outbound
//! backpressure from a client that never reads, half-close mid-line
//! during a pipelined burst, and a mass of idle connections that must not
//! degrade service on the active one.
//!
//! The shared hostile-client corpus (which runs against BOTH frontends)
//! lives in `server_adversarial.rs`.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use exageostat_rs::prelude::*;
use exageostat_rs::server::build_plan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xgs_runtime::parse_json;

/// 150-site Matérn model under a reactor-frontend server.
fn started_reactor(cfg: ServerConfig) -> exageostat_rs::server::ServerHandle {
    let mut rng = StdRng::seed_from_u64(404);
    let locs = jittered_grid(150, &mut rng);
    let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
    let z = simulate_field(kernel.as_ref(), &locs, 405);
    let (plan, _) = build_plan(
        ModelFamily::MaternSpace,
        &[1.0, 0.1, 0.5],
        Variant::MpDense,
        48,
        locs,
        &z,
        1,
    )
    .unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("default", plan);
    serve(
        &ServerConfig {
            frontend: Frontend::Reactor,
            ..cfg
        },
        registry,
    )
    .expect("bind loopback")
}

fn assert_alive(addr: std::net::SocketAddr) {
    let probe = TcpStream::connect(addr).unwrap();
    let mut r = BufReader::new(probe.try_clone().unwrap());
    let mut w = probe;
    w.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    let v = parse_json(&line).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
}

#[test]
fn client_that_never_reads_is_disconnected_not_buffered() {
    // A tiny outbound cap so the breach happens after the kernel's socket
    // buffers fill, without needing gigabytes of replies.
    let handle = started_reactor(ServerConfig {
        max_conn_outbound: 1024,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Pings with a fat echoed id (just under MAX_ID_LEN, so it IS echoed)
    // make each reply ~0.3 KiB; ~100k of them is ~30 MiB of replies —
    // far beyond what loopback kernel buffers can absorb, so the
    // server-side outbound queue must grow past the 1 KiB cap. The
    // client NEVER reads; the server must cut the socket rather than
    // queue replies forever.
    let mut hog = TcpStream::connect(addr).unwrap();
    hog.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
    let fat_id = "x".repeat(240);
    let req = format!("{{\"op\":\"ping\",\"id\":\"{fat_id}\"}}\n");
    let burst: Vec<u8> = req.as_bytes().repeat(16);
    let mut write_failed = false;
    for _ in 0..(100_000 / 16) {
        if hog.write_all(&burst).is_err() {
            // EPIPE/RST: the server already cut us off mid-burst.
            write_failed = true;
            break;
        }
    }
    // Keep NOT reading for a beat: the reply backlog must land in the
    // server's outbound queue (kernel buffers are already full) and trip
    // the cap no matter how reads and dispatches interleaved above.
    std::thread::sleep(Duration::from_secs(2));

    // Whether or not the write side noticed, the read side must reach
    // EOF/reset in bounded time — the server does not keep the hog alive.
    hog.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut sink = vec![0u8; 64 * 1024];
    let mut drained = 0usize;
    let cut = loop {
        match hog.read(&mut sink) {
            Ok(0) => break true,
            Ok(n) => {
                // Replies buffered before the cut still arrive; they are
                // bounded by kernel buffers + the cap, not by the burst.
                drained += n;
                if drained > 64 << 20 {
                    break false;
                }
            }
            Err(e) if e.kind() == ErrorKind::ConnectionReset => break true,
            // Timeout or other read error without EOF: not a clean cut.
            Err(_) => break false,
        }
    };
    assert!(
        cut || write_failed,
        "server never disconnected a client that stopped reading (drained {drained} bytes)"
    );

    // Everyone else is unaffected.
    assert_alive(addr);
    handle.shutdown();
    handle.join();
}

#[test]
fn fin_mid_line_still_answers_the_complete_requests() {
    let handle = started_reactor(ServerConfig::default());
    let addr = handle.addr();

    // Three complete pipelined predicts, then a request cut mid-line,
    // then FIN (half-close: our read side stays open).
    let mut s = TcpStream::connect(addr).unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    for seq in 0..3 {
        let req = format!("{{\"op\":\"predict\",\"id\":{seq},\"points\":[[0.4,0.6]]}}\n");
        s.write_all(req.as_bytes()).unwrap();
    }
    s.write_all(b"{\"op\":\"predict\",\"id\":99,\"poin")
        .unwrap();
    s.shutdown(Shutdown::Write).unwrap();

    // The three complete requests are answered across the half-close; the
    // partial one is dropped silently; then the server closes cleanly.
    let mut ids = Vec::new();
    loop {
        let mut line = String::new();
        let n = r.read_line(&mut line).unwrap();
        if n == 0 {
            break;
        }
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
        ids.push(v.get("id").unwrap().as_usize().unwrap());
    }
    ids.sort_unstable();
    assert_eq!(
        ids,
        vec![0, 1, 2],
        "every complete request answered, the torn one dropped"
    );

    assert_alive(addr);
    handle.shutdown();
    handle.join();
}

#[test]
fn a_thousand_idle_connections_do_not_starve_the_active_one() {
    let handle = started_reactor(ServerConfig::default());
    let addr = handle.addr();

    // 1000 connections that say nothing, held open for the whole test.
    let mut idle = Vec::with_capacity(1000);
    for _ in 0..1000 {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            // Backlog pressure: give the reactor a beat to drain accepts.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert!(
        idle.len() >= 900,
        "could not raise the idle herd: {}",
        idle.len()
    );

    // An active connection must still see prompt round-trips. The bound
    // is generous (CI machines are slow) but finite — a reactor that
    // scans or re-polls all idle sockets per request would blow it.
    let active = TcpStream::connect(addr).unwrap();
    let mut r = BufReader::new(active.try_clone().unwrap());
    let mut w = active;
    let t0 = Instant::now();
    for seq in 0..20 {
        let req = format!("{{\"op\":\"predict\",\"id\":{seq},\"points\":[[0.5,0.5]]}}\n");
        w.write_all(req.as_bytes()).unwrap();
        let mut line = String::new();
        assert!(r.read_line(&mut line).unwrap() > 0, "server hung up");
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "20 round-trips took {elapsed:?} with 1000 idle connections"
    );

    // The high-water mark shows up in the metrics census.
    w.write_all(b"{\"op\":\"metrics\"}\n").unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    let m = parse_json(&line).unwrap();
    let kinds: Vec<String> = m
        .get("metrics")
        .unwrap()
        .get("kernels")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|k| k.get("kind").and_then(|s| s.as_str().map(str::to_string)))
        .collect();
    assert!(
        kinds.iter().any(|k| k == "open_conns_hwm"),
        "reactor counters missing from metrics: {kinds:?}"
    );
    assert!(kinds.iter().any(|k| k == "ready_event"), "{kinds:?}");

    drop(idle);
    handle.shutdown();
    handle.join();
}

//! Property-based tests (proptest) on the numerical core's invariants.

use exageostat_rs::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn half_roundtrip_never_increases_magnitude_error_beyond_unit_roundoff(
        x in -60000.0f64..60000.0
    ) {
        let r = Half::from_f64(x).to_f64();
        // For normal-range values the relative error is bounded by u16.
        if x.abs() >= 6.104e-5 {
            prop_assert!(((r - x) / x).abs() <= 4.8828125e-4);
        } else {
            // Subnormal/underflow: absolute error bounded by the smallest
            // subnormal step.
            prop_assert!((r - x).abs() <= 5.97e-8);
        }
    }

    #[test]
    fn gemm_is_linear_in_alpha(a in finite_matrix(6, 4), b in finite_matrix(4, 5)) {
        let c1 = a.matmul(&b);
        let mut a2 = a.clone();
        a2.scale(2.0);
        let c2 = a2.matmul(&b);
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            prop_assert!((2.0 * x - y).abs() <= 1e-9 * (x.abs().max(1.0)));
        }
    }

    #[test]
    fn svd_reconstruction_and_ordering(a in finite_matrix(8, 6)) {
        let svd = xgs_linalg::jacobi_svd(&a);
        let rec = svd.reconstruct();
        let err = rec.add_scaled(-1.0, &a).norm_fro();
        prop_assert!(err <= 1e-9 * a.norm_fro().max(1e-12), "err {}", err);
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        // Eckart-Young sanity: Frobenius norm identity.
        let s_norm: f64 = svd.s.iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((s_norm - a.norm_fro()).abs() <= 1e-9 * a.norm_fro().max(1e-12));
    }

    #[test]
    fn aca_respects_any_tolerance(a in finite_matrix(10, 10), tol_frac in 0.001f64..0.5) {
        let tol = tol_frac * a.norm_fro().max(1e-12);
        let (u, v) = xgs_linalg::aca(&a, tol, 10);
        let err = a.add_scaled(-1.0, &u.matmul_t(&v)).norm_fro();
        prop_assert!(err <= tol * (1.0 + 1e-9), "err {} tol {}", err, tol);
    }

    #[test]
    fn lowrank_rounded_addition_error_is_bounded(
        seed in 0u64..1000,
        tol_frac in 0.0001f64..0.01,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rnd = |rows: usize, cols: usize, rng: &mut StdRng| {
            use rand::RngExt;
            Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0))
        };
        let a = LowRank { u: rnd(12, 3, &mut rng), v: rnd(9, 3, &mut rng) };
        let b = LowRank { u: rnd(12, 2, &mut rng), v: rnd(9, 2, &mut rng) };
        let exact = a.reconstruct().add_scaled(-1.0, &b.reconstruct());
        let tol = tol_frac * exact.norm_fro().max(1e-12);
        let sum = a.add_rounded(-1.0, &b, tol);
        let err = sum.reconstruct().add_scaled(-1.0, &exact).norm_fro();
        prop_assert!(err <= tol * (1.0 + 1e-6), "err {} tol {}", err, tol);
    }

    #[test]
    fn matern_is_a_valid_correlation(nu in 0.11f64..4.0, t in 0.0f64..40.0) {
        let c = matern_correlation(nu, t);
        prop_assert!((0.0..=1.0).contains(&c), "M_{}({}) = {}", nu, t, c);
    }

    #[test]
    fn bessel_recurrence_property(nu in 1.01f64..4.0, x in 0.05f64..15.0) {
        let lhs = bessel_k(nu + 1.0, x);
        let rhs = bessel_k(nu - 1.0, x) + 2.0 * nu / x * bessel_k(nu, x);
        prop_assert!(((lhs - rhs) / lhs).abs() < 1e-8, "nu={} x={}", nu, x);
    }

    #[test]
    fn precision_rule_respects_its_bound(
        tile_norm in 1e-20f64..1e3,
        global_norm in 1e-3f64..1e6,
        nt in 2usize..500,
    ) {
        let p = xgs_tile::precision_for_tile(10, 0, 1, tile_norm, global_norm, nt, true);
        if p != Precision::F64 {
            // If demoted, the tile's worst-case storage error stays within
            // its share of the global budget.
            let u_high = Precision::F64.unit_roundoff();
            let err = p.unit_roundoff() * tile_norm;
            prop_assert!(err <= u_high * global_norm / nt as f64 * (1.0 + 1e-12));
        }
    }
}

proptest! {
    // Heavier cases: fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tile_cholesky_reconstructs_random_spd_matrices(seed in 0u64..10_000) {
        use xgs_cholesky::TiledFactor;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut locs = jittered_grid(180, &mut rng);
        morton_order(&mut locs);
        // Random-but-valid Matérn parameters.
        use rand::RngExt;
        let params = MaternParams::new(
            rng.random_range(0.3..3.0),
            rng.random_range(0.02..0.4),
            rng.random_range(0.3..2.4),
        );
        let kernel = Matern::new(params);
        let exact = xgs_covariance::covariance_matrix(&kernel, &locs);
        let m = SymTileMatrix::generate(
            &kernel,
            &locs,
            TlrConfig::new(Variant::DenseF64, 45),
            &FlopKernelModel::default(),
        );
        let mut f = TiledFactor::from_matrix(m);
        f.factorize_seq().unwrap();
        let l = f.to_dense_lower();
        let rec = l.matmul_t(&l);
        let mut err = 0.0f64;
        for j in 0..exact.cols() {
            for i in j..exact.rows() {
                let d: f64 = rec[(i, j)] - exact[(i, j)];
                err += d * d * if i == j { 1.0 } else { 2.0 };
            }
        }
        prop_assert!(
            err.sqrt() <= 1e-9 * exact.norm_fro(),
            "residual {} for params {:?}",
            err.sqrt(),
            params
        );
    }

    #[test]
    fn sharded_cholesky_is_bitwise_identical_to_sequential(
        seed in 0u64..10_000,
        shards in 1usize..7,
    ) {
        // The multi-process backend (here: in-process worker loops over
        // real loopback sockets, same wire protocol as separate
        // processes) must reproduce the sequential factor bit for bit on
        // random Matérn problems — every tile grid vs process grid
        // combination, including the 1×1 grid and more workers than
        // tiles (nb = 85 gives a 2×2 tile grid; shards ≥ 5 then idle).
        use xgs_cholesky::{spawn_local_workers, ShardOptions, TiledFactor};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut locs = jittered_grid(160, &mut rng);
        morton_order(&mut locs);
        use rand::RngExt;
        let params = MaternParams::new(
            rng.random_range(0.3..3.0),
            rng.random_range(0.02..0.4),
            rng.random_range(0.3..2.4),
        );
        let kernel = Matern::new(params);
        let nb = [30, 45, 85][(seed % 3) as usize];
        let variant = if seed % 2 == 0 { Variant::DenseF64 } else { Variant::MpDense };
        let cfg = TlrConfig::new(variant, nb);
        let generate = || SymTileMatrix::generate(&kernel, &locs, cfg, &FlopKernelModel::default());

        let mut seq = TiledFactor::from_matrix(generate());
        seq.factorize_seq().unwrap();

        let mut sharded = TiledFactor::from_matrix(generate());
        let (streams, handles) = spawn_local_workers(shards).unwrap();
        let rep = sharded
            .factorize_sharded(streams, &ShardOptions::for_workers(shards))
            .unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }

        let (a, b) = (seq.to_dense_lower(), sharded.to_dense_lower());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!(x.to_bits() == y.to_bits(), "params {:?}: {x} vs {y}", params);
        }
        prop_assert_eq!(rep.worker_tasks.iter().sum::<u64>() as usize, rep.metrics.tasks);
    }

    #[test]
    fn batched_kriging_matches_pointwise_queries(
        seed in 0u64..10_000,
        n_test in 1usize..24,
        uncertainty in (0usize..2).prop_map(|u| u == 1),
    ) {
        // The server coalesces concurrent requests into one multi-RHS
        // query; batching must never change results. Point-by-point
        // queries are the finest possible batch split, so full-batch vs
        // singletons covers every split. The acceptance bar is 1e-12 but
        // the kernels are column-independent, so we can demand bit
        // equality outright.
        use exageostat_rs::server::build_plan;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut locs = jittered_grid(120, &mut rng);
        morton_order(&mut locs);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, seed);
        let (plan, _) = build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::DenseF64,
            40,
            locs,
            &z,
            1,
        )
        .unwrap();
        use rand::RngExt;
        let points: Vec<Location> = (0..n_test)
            .map(|_| Location::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        let batched = plan.query(&points, uncertainty);
        for (i, p) in points.iter().enumerate() {
            let single = plan.query(std::slice::from_ref(p), uncertainty);
            prop_assert!((batched.mean[i] - single.mean[0]).abs() <= 1e-12);
            prop_assert_eq!(batched.mean[i].to_bits(), single.mean[0].to_bits());
            if uncertainty {
                let bu = batched.uncertainty.as_ref().unwrap()[i];
                let su = single.uncertainty.as_ref().unwrap()[0];
                prop_assert_eq!(bu.to_bits(), su.to_bits());
            }
        }
    }

    #[test]
    fn mixed_precision_factor_predicts_like_fp64(seed in 0u64..10_000) {
        // Caching an adaptively demoted (mixed-precision) factor in the
        // model registry must not visibly move predictions relative to the
        // all-FP64 factor of the same Σ(θ): the precision rule bounds each
        // tile's storage error by its share of the FP64-level global
        // budget.
        use exageostat_rs::server::build_plan;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut locs = jittered_grid(150, &mut rng);
        morton_order(&mut locs);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, seed);
        use rand::RngExt;
        let points: Vec<Location> = (0..12)
            .map(|_| Location::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        let (p64, llh64) = build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::DenseF64,
            40,
            locs.clone(),
            &z,
            1,
        )
        .unwrap();
        let (pmp, llhmp) = build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::MpDense,
            40,
            locs,
            &z,
            1,
        )
        .unwrap();
        prop_assert!((llh64 - llhmp).abs() <= 1e-4 * llh64.abs().max(1.0));
        let a = p64.query(&points, true);
        let b = pmp.query(&points, true);
        for (x, y) in a.mean.iter().zip(&b.mean) {
            prop_assert!((x - y).abs() <= 1e-5 * x.abs().max(1.0), "{x} vs {y}");
        }
        for (x, y) in a
            .uncertainty
            .as_ref()
            .unwrap()
            .iter()
            .zip(b.uncertainty.as_ref().unwrap())
        {
            prop_assert!((x - y).abs() <= 1e-5 * x.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn runtime_schedules_random_dags_sequentially_consistently(seed in 0u64..10_000) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        fn build(seed: u64, cells: Arc<Vec<AtomicU64>>) -> TaskGraph {
            let mut g = TaskGraph::new();
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            for _ in 0..120 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = ((s >> 8) % 8) as usize;
                let b = ((s >> 16) % 8) as usize;
                let c = cells.clone();
                g.insert(
                    "mix",
                    vec![Access::read(DataId(a as u64)), Access::write(DataId(b as u64))],
                    ((s >> 24) % 5) as i64,
                    0.0,
                    move || {
                        let x = c[a].load(Ordering::SeqCst);
                        let y = c[b].load(Ordering::SeqCst);
                        c[b].store(y.wrapping_mul(1099511628211).wrapping_add(x), Ordering::SeqCst);
                    },
                );
            }
            g
        }
        let seq: Arc<Vec<AtomicU64>> = Arc::new((0..8).map(AtomicU64::new).collect());
        execute(build(seed, seq.clone()), 1, false);
        let par: Arc<Vec<AtomicU64>> = Arc::new((0..8).map(AtomicU64::new).collect());
        execute(build(seed, par.clone()), 4, false);
        for i in 0..8 {
            prop_assert_eq!(
                seq[i].load(std::sync::atomic::Ordering::SeqCst),
                par[i].load(std::sync::atomic::Ordering::SeqCst)
            );
        }
    }
}

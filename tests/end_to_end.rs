//! Cross-crate integration tests: the full modeling → prediction pipeline
//! through every layer of the stack (kernels → linalg → covariance → tile
//! → runtime → cholesky → core).

use exageostat_rs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(n: usize, params: MaternParams, seed: u64) -> (Vec<Location>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut locs = jittered_grid(n, &mut rng);
    morton_order(&mut locs);
    let z = simulate_field(&Matern::new(params), &locs, seed + 1);
    (locs, z)
}

/// A TLR-friendly kernel model for small test tiles (the calibrated A64FX
/// crossover at nb/13.5 would keep tiny test tiles dense — correct, but
/// not what integration tests need to exercise).
fn tlr_model() -> FlopKernelModel {
    FlopKernelModel {
        dense_rate: 45.0e9,
        mem_factor: 1.0,
    }
}

#[test]
fn three_variants_agree_on_likelihood_and_prediction() {
    let truth = MaternParams::new(1.0, 0.08, 0.5);
    let (locs, z) = dataset(700, truth, 11);
    let (train, test) = locs.split_at(600);
    let (ztr, zte) = z.split_at(600);
    let kernel = Matern::new(truth);
    let model = tlr_model();

    let mut llhs = Vec::new();
    let mut errs = Vec::new();
    for variant in [Variant::DenseF64, Variant::MpDense, Variant::MpDenseTlr] {
        let cfg = TlrConfig::new(variant, 75);
        let rep = log_likelihood(&kernel, train, ztr, &cfg, &model, 0).unwrap();
        let pred = krige(&kernel, train, ztr, &rep.factor, test, false);
        llhs.push(rep.llh);
        errs.push(mspe(&pred.mean, zte));
    }
    // Likelihoods agree to ~1e-4 relative; MSPEs to a few percent — the
    // Table I story.
    for i in 1..3 {
        assert!(
            (llhs[i] - llhs[0]).abs() / llhs[0].abs() < 1e-3,
            "llh drift: {llhs:?}"
        );
        assert!(
            (errs[i] - errs[0]).abs() / errs[0] < 0.05,
            "mspe drift: {errs:?}"
        );
    }
}

#[test]
fn parallel_runtime_bitwise_matches_sequential_through_full_pipeline() {
    let truth = MaternParams::new(1.0, 0.1, 1.5);
    let (locs, z) = dataset(500, truth, 23);
    let kernel = Matern::new(truth);
    let cfg = TlrConfig::new(Variant::MpDenseTlr, 50);
    let model = tlr_model();
    let seq = log_likelihood(&kernel, &locs, &z, &cfg, &model, 1).unwrap();
    let par = log_likelihood(&kernel, &locs, &z, &cfg, &model, 6).unwrap();
    assert_eq!(seq.llh, par.llh);
    assert_eq!(seq.logdet, par.logdet);
    assert_eq!(seq.quad, par.quad);
}

#[test]
fn mle_recovers_parameters_with_adaptive_solver() {
    // The Fig. 6 property at a single-replicate scale: the MP+TLR variant
    // estimates land near the truth.
    let truth = MaternParams::new(1.0, 0.1, 0.5);
    let (locs, z) = dataset(600, truth, 31);
    let cfg = TlrConfig::new(Variant::MpDenseTlr, 75);
    let opts = FitOptions {
        start: Some(vec![0.7, 0.2, 1.0]),
        optimizer: exageostat_rs::core::mle::FitOptimizer::NelderMead(
            exageostat_rs::core::NelderMeadOptions {
                max_evals: 120,
                f_tol: 1e-4,
                initial_step: 0.35,
            },
        ),
        workers: 0,
        shard: None,
    };
    let r = fit(
        ModelFamily::MaternSpace,
        &locs,
        &z,
        &cfg,
        &tlr_model(),
        &opts,
    );
    assert!((0.4..2.5).contains(&r.theta[0]), "variance {}", r.theta[0]);
    assert!((0.03..0.35).contains(&r.theta[1]), "range {}", r.theta[1]);
    assert!(
        (0.2..1.2).contains(&r.theta[2]),
        "smoothness {}",
        r.theta[2]
    );
}

#[test]
fn spacetime_model_fits_and_predicts() {
    let mut rng = StdRng::seed_from_u64(41);
    let spatial = jittered_grid(90, &mut rng);
    let mut locs = spacetime_grid(&spatial, 6);
    morton_order(&mut locs);
    let truth = SpaceTimeParams::new(1.0, 0.3, 0.5, 0.5, 0.9, 0.3);
    let kernel = GneitingSpaceTime::new(truth);
    let z = simulate_field(&kernel, &locs, 55);

    let (train, test) = locs.split_at(480);
    let (ztr, zte) = z.split_at(480);
    let cfg = TlrConfig::new(Variant::MpDense, 60);
    let rep = log_likelihood(&kernel, train, ztr, &cfg, &tlr_model(), 0).unwrap();
    assert!(rep.llh.is_finite());
    let pred = krige(&kernel, train, ztr, &rep.factor, test, true);
    let err = mspe(&pred.mean, zte);
    let trivial = mspe(&vec![0.0; zte.len()], zte);
    assert!(
        err < trivial,
        "space-time kriging must beat the mean predictor"
    );
    for &u in pred.uncertainty.as_ref().unwrap() {
        assert!((0.0..=1.0 + 1e-9).contains(&u));
    }
}

#[test]
fn conversion_counters_observe_mixed_precision_traffic() {
    let truth = MaternParams::new(1.0, 0.01, 0.5);
    let (locs, z) = dataset(1024, truth, 61);
    let kernel = Matern::new(truth);
    xgs_runtime::reset_conversion_counts();
    let cfg = TlrConfig::new(Variant::MpDense, 32);
    let _ = log_likelihood(&kernel, &locs, &z, &cfg, &tlr_model(), 1).unwrap();
    let counts = xgs_runtime::conversion_counts();
    assert!(
        counts.total() > 0,
        "weak-correlation MP factorization must convert operands: {counts:?}"
    );
}

#[test]
fn scale_projection_consistent_with_local_execution_ordering() {
    // The simulated-scale story and the locally measured story must agree
    // qualitatively: MP+TLR does less work than MP dense, which does less
    // than dense FP64.
    let n = 1_000_000;
    let dense = project(&ScaleConfig::new(
        n,
        800,
        2048,
        Correlation::Weak,
        SolverVariant::DenseF64,
    ));
    let mp = project(&ScaleConfig::new(
        n,
        800,
        2048,
        Correlation::Weak,
        SolverVariant::MpDense,
    ));
    let tlr = project(&ScaleConfig::new(
        n,
        800,
        2048,
        Correlation::Weak,
        SolverVariant::MpDenseTlr,
    ));
    assert!(mp.makespan < dense.makespan);
    assert!(tlr.makespan < mp.makespan);
    assert!(tlr.footprint_bytes < mp.footprint_bytes);
    assert!(mp.footprint_bytes < dense.footprint_bytes);
}

#[test]
fn factorization_failure_surfaces_as_error_not_panic() {
    // A non-SPD "covariance" (nonsense parameters can produce one through
    // approximation): the solver reports NotPositiveDefinite and the MLE
    // objective treats it as out-of-model.
    let (locs, _z) = dataset(200, MaternParams::new(1.0, 0.1, 0.5), 71);
    // Duplicate every location: exactly singular covariance.
    let mut dup = locs.clone();
    dup.extend_from_slice(&locs);
    let kernel = Matern::new(MaternParams::new(1.0, 0.1, 0.5));
    let z = vec![0.0; dup.len()];
    let cfg = TlrConfig::new(Variant::DenseF64, 100);
    let res = log_likelihood(&kernel, &dup, &z, &cfg, &tlr_model(), 1);
    assert!(res.is_err(), "singular covariance must fail cleanly");
}

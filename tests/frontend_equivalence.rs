//! Property test: the two server frontends (thread-per-connection and
//! epoll reactor) are observationally equivalent. For random batches of
//! id-tagged predict requests, pipelined in random per-frontend
//! interleavings over one connection, both frontends must answer every id
//! exactly once, and per-id payloads (mean and uncertainty vectors) must
//! be **bitwise** identical — batching, out-of-order completion, and the
//! choice of frontend never change results.
//!
//! A second server pair runs with a one-point queue budget, so shedding
//! is exercised: which ids get shed is timing-dependent and may differ
//! between frontends, but every id is still answered exactly once, shed
//! responses always carry a `retry_after_ms` hint, and ids that succeed
//! on both frontends still agree bit-for-bit.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};

use exageostat_rs::prelude::*;
use exageostat_rs::server::build_plan;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xgs_runtime::parse_json;

/// Both frontends over ONE shared model registry, so any payload
/// difference is the frontend's fault, not the model's.
struct Servers {
    plain: [SocketAddr; 2],
    shedding: [SocketAddr; 2],
}

static SERVERS: OnceLock<Servers> = OnceLock::new();

fn servers() -> &'static Servers {
    SERVERS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(505);
        let locs = jittered_grid(60, &mut rng);
        let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
        let z = simulate_field(kernel.as_ref(), &locs, 506);
        let (plan, _) = build_plan(
            ModelFamily::MaternSpace,
            &[1.0, 0.1, 0.5],
            Variant::MpDense,
            24,
            locs,
            &z,
            1,
        )
        .unwrap();
        let registry = Arc::new(ModelRegistry::new());
        registry.insert("default", plan);

        let start = |frontend: Frontend, max_queued_points: usize| -> SocketAddr {
            let cfg = ServerConfig {
                frontend,
                max_queued_points,
                ..ServerConfig::default()
            };
            let handle = serve(&cfg, registry.clone()).expect("bind loopback");
            let addr = handle.addr();
            // The servers live for the whole test process; the process
            // exit reaps their threads.
            std::mem::forget(handle);
            addr
        };
        let default_budget = ServerConfig::default().max_queued_points;
        Servers {
            plain: [
                start(Frontend::Threaded, default_budget),
                start(Frontend::Reactor, default_budget),
            ],
            shedding: [start(Frontend::Threaded, 1), start(Frontend::Reactor, 1)],
        }
    })
}

/// One answered request: `Ok` carries the IEEE bit patterns of the mean
/// and uncertainty vectors; `Shed` is a refusal with a retry hint.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Ok {
        mean: Vec<u64>,
        uncertainty: Vec<u64>,
    },
    Shed,
}

/// Pipeline `requests` (shuffled by `order_seed`) over one connection and
/// collect every id's outcome. Panics on transport errors, duplicate or
/// missing ids, or an unclassifiable response — all property violations.
fn run_interleaving(
    addr: SocketAddr,
    requests: &[Vec<(f64, f64)>],
    order_seed: u64,
) -> Vec<Outcome> {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    let mut rng = StdRng::seed_from_u64(order_seed);
    // Fisher–Yates: a uniformly random interleaving of the pipeline.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..(i + 1)));
    }

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for &id in &order {
        let pts: Vec<String> = requests[id]
            .iter()
            .map(|(x, y)| format!("[{x},{y}]"))
            .collect();
        let req = format!(
            "{{\"op\":\"predict\",\"id\":{id},\"points\":[{}],\"uncertainty\":true}}\n",
            pts.join(",")
        );
        stream.write_all(req.as_bytes()).unwrap();
    }

    let mut outcomes: Vec<Option<Outcome>> = (0..requests.len()).map(|_| None).collect();
    for _ in 0..requests.len() {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        let v = parse_json(&line).unwrap();
        let id = v.get("id").unwrap().as_usize().unwrap();
        let outcome = if v.get("ok").unwrap().as_bool() == Some(true) {
            let bits = |field: &str| -> Vec<u64> {
                v.get(field)
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|x| x.as_f64().unwrap().to_bits())
                    .collect()
            };
            Outcome::Ok {
                mean: bits("mean"),
                uncertainty: bits("uncertainty"),
            }
        } else {
            assert!(
                v.get("retry_after_ms").and_then(|h| h.as_usize()).is_some(),
                "refusal without retry hint: {line}"
            );
            Outcome::Shed
        };
        assert!(
            outcomes[id].replace(outcome).is_none(),
            "duplicate response for id {id}"
        );
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("every id answered exactly once"))
        .collect()
}

/// Longest request batch a case can draw.
const MAX_REQUESTS: usize = 12;
/// Most points one predict can carry.
const MAX_POINTS: usize = 3;

/// Slice a flat coordinate pool into `n` requests of `sizes[i]` points
/// each (the vendored proptest shim has fixed-count `vec` only, so
/// variable shapes are carved out of fixed-size draws).
fn carve_requests(n: usize, sizes: &[usize], coords: &[f64]) -> Vec<Vec<(f64, f64)>> {
    let mut pool = coords.iter().copied();
    (0..n)
        .map(|i| {
            (0..sizes[i])
                .map(|_| {
                    let x = pool.next().expect("coordinate pool sized for the maximum");
                    let y = pool.next().expect("coordinate pool sized for the maximum");
                    (x, y)
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn frontends_agree_bitwise_for_any_interleaving(
        n in 1usize..MAX_REQUESTS + 1,
        sizes in proptest::collection::vec(1usize..MAX_POINTS + 1, MAX_REQUESTS),
        coords in proptest::collection::vec(0.0f64..1.0, 2 * MAX_REQUESTS * MAX_POINTS),
        seed_a in 0u64..u64::MAX,
        seed_b in 0u64..u64::MAX,
    ) {
        let requests = carve_requests(n, &sizes, &coords);
        let s = servers();
        let threaded = run_interleaving(s.plain[0], &requests, seed_a);
        let reactor = run_interleaving(s.plain[1], &requests, seed_b);
        for (id, (t, r)) in threaded.iter().zip(&reactor).enumerate() {
            // No shedding under the default budget: both succeed, and the
            // payloads agree to the last bit.
            prop_assert!(matches!(t, Outcome::Ok { .. }), "threaded shed id {}", id);
            prop_assert_eq!(t, r);
        }
    }

    #[test]
    fn frontends_agree_under_shedding(
        n in 1usize..MAX_REQUESTS + 1,
        sizes in proptest::collection::vec(1usize..MAX_POINTS + 1, MAX_REQUESTS),
        coords in proptest::collection::vec(0.0f64..1.0, 2 * MAX_REQUESTS * MAX_POINTS),
        seed_a in 0u64..u64::MAX,
        seed_b in 0u64..u64::MAX,
    ) {
        let requests = carve_requests(n, &sizes, &coords);
        let s = servers();
        // run_interleaving already asserts the core liveness property:
        // every id answered exactly once, shed or not.
        let threaded = run_interleaving(s.shedding[0], &requests, seed_a);
        let reactor = run_interleaving(s.shedding[1], &requests, seed_b);
        for (t, r) in threaded.iter().zip(&reactor) {
            // WHICH ids are shed is timing-dependent and may differ, but
            // ids that succeed on both frontends must agree bitwise.
            if let (Outcome::Ok { .. }, Outcome::Ok { .. }) = (t, r) {
                prop_assert_eq!(t, r);
            }
        }
    }
}

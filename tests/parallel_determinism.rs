//! Determinism under parallelism: every rayon-fanned path must produce
//! bitwise-identical results on a 1-thread pool and an N-thread pool.
//!
//! This is the repo's core reproducibility contract extended to the real
//! work-stealing pool: chunk *scheduling* may race, but each chunk's
//! arithmetic is independent of which worker runs it and of how many
//! workers exist, and order-preserving `collect` reassembles results by
//! chunk index. These tests pin that contract for the three rayon call
//! sites — covariance assembly (`par_chunks_mut`), tile generation
//! (`par_iter().map().collect()`), and PSO particle evaluation — plus a
//! full fit on top of all three.

use exageostat_rs::core::PsoOptions;
use exageostat_rs::covariance::covariance_matrix;
use exageostat_rs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::ThreadPoolBuilder;

/// Run `f` with the thread-local pool forced to `threads` workers.
fn with_pool<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(f)
}

fn dataset(n: usize, seed: u64) -> (Vec<Location>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut locs = jittered_grid(n, &mut rng);
    morton_order(&mut locs);
    let z = simulate_field(
        &Matern::new(MaternParams::new(1.0, 0.09, 0.6)),
        &locs,
        seed + 1,
    );
    (locs, z)
}

#[test]
fn covariance_assembly_is_bitwise_identical_across_pool_sizes() {
    let (locs, _) = dataset(400, 7);
    let kernel = Matern::new(MaternParams::new(0.9, 0.13, 0.48));
    let one = with_pool(1, || covariance_matrix(&kernel, &locs));
    let many = with_pool(4, || covariance_matrix(&kernel, &locs));
    // Bitwise, not approximate: same chunk arithmetic regardless of who
    // runs it, order restored by index.
    assert_eq!(one.as_slice(), many.as_slice());
}

#[test]
fn pso_objective_fanout_is_bitwise_identical_across_pool_sizes() {
    // Rosenbrock-ish objective, expensive enough for chunks > 1 particle.
    let obj = |x: &[f64]| -> f64 {
        x.windows(2)
            .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
            .sum()
    };
    let bounds = vec![(-2.0, 2.0); 4];
    let opts = PsoOptions {
        particles: 24,
        iterations: 30,
        parallel: true,
        ..PsoOptions::default()
    };
    let one = with_pool(1, || particle_swarm(obj, &bounds, &opts));
    let many = with_pool(4, || particle_swarm(obj, &bounds, &opts));
    assert_eq!(one.x, many.x);
    assert_eq!(one.f.to_bits(), many.f.to_bits());
    assert_eq!(one.history, many.history);
    // Parallel evaluation must also match the sequential reference path.
    let seq = particle_swarm(
        obj,
        &bounds,
        &PsoOptions {
            parallel: false,
            ..opts
        },
    );
    assert_eq!(seq.x, one.x);
    assert_eq!(seq.f.to_bits(), one.f.to_bits());
}

#[test]
fn tile_cholesky_factor_is_bitwise_identical_across_pool_sizes() {
    let (locs, _) = dataset(600, 21);
    let kernel = Matern::new(MaternParams::new(1.1, 0.08, 0.5));
    let model = FlopKernelModel {
        dense_rate: 45.0e9,
        mem_factor: 1.0,
    };
    // MpDenseTlr exercises every tile format the generator can emit
    // (dense f64/f32/f16 and low-rank) through the pool-fanned
    // par_iter generation path.
    let factor = |threads: usize| {
        with_pool(threads, || {
            let m = SymTileMatrix::generate(
                &kernel,
                &locs,
                TlrConfig::new(Variant::MpDenseTlr, 75),
                &model,
            );
            let mut f = TiledFactor::from_matrix(m);
            f.factorize_seq().expect("SPD");
            f.to_dense_lower()
        })
    };
    let one = factor(1);
    let many = factor(4);
    assert_eq!(one.as_slice(), many.as_slice());
}

#[test]
fn full_fit_is_bitwise_identical_across_pool_sizes() {
    let (locs, z) = dataset(300, 33);
    let model = FlopKernelModel {
        dense_rate: 45.0e9,
        mem_factor: 1.0,
    };
    let cfg = TlrConfig::new(Variant::DenseF64, 64);
    let run = |threads: usize| {
        with_pool(threads, || {
            let opts = FitOptions {
                optimizer: exageostat_rs::core::mle::FitOptimizer::ParticleSwarm(PsoOptions {
                    particles: 6,
                    iterations: 4,
                    parallel: true,
                    ..PsoOptions::default()
                }),
                ..FitOptions::default()
            };
            fit(ModelFamily::MaternSpace, &locs, &z, &cfg, &model, &opts)
        })
    };
    let one = run(1);
    let many = run(4);
    assert_eq!(one.llh.to_bits(), many.llh.to_bits());
    for (a, b) in one.theta.iter().zip(&many.theta) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(one.evals, many.evals);
}

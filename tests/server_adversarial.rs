//! Fault-injection and robustness tests for the prediction service: the
//! hostile-client corpus (oversized lines, nesting bombs, non-finite
//! payloads, binary garbage, half-written requests), the connection
//! multiplexing guarantees (a `ping` is never head-of-line-blocked by
//! queued `predict`s), per-request deadlines, and overload shedding.
//!
//! The common thread: **the server stays up and every accepted request is
//! answered** — misbehaving clients get one error (or a closed socket),
//! never a wedged or crashed service.
//!
//! Every scenario runs against BOTH frontends — the thread-per-connection
//! layout and the epoll reactor — through one parameterized harness, so
//! the wire-visible contract cannot drift between them. Reactor-only
//! scenarios (outbound backpressure, mass idle connections) live in
//! `reactor_adversarial.rs`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use exageostat_rs::prelude::*;
use exageostat_rs::server::build_plan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xgs_runtime::{parse_json, JsonValue};

/// 150-site Matérn model under a server with the given knobs.
fn started_server(cfg: ServerConfig) -> exageostat_rs::server::ServerHandle {
    let mut rng = StdRng::seed_from_u64(303);
    let locs = jittered_grid(150, &mut rng);
    let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
    let z = simulate_field(kernel.as_ref(), &locs, 304);
    let (plan, _) = build_plan(
        ModelFamily::MaternSpace,
        &[1.0, 0.1, 0.5],
        Variant::MpDense,
        48,
        locs,
        &z,
        1,
    )
    .unwrap();
    let registry = Arc::new(ModelRegistry::new());
    registry.insert("default", plan);
    serve(&cfg, registry).expect("bind loopback")
}

/// Default config for one frontend under test.
fn cfg_for(frontend: Frontend) -> ServerConfig {
    ServerConfig {
        frontend,
        ..ServerConfig::default()
    }
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
) -> JsonValue {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    parse_json(&line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"))
}

/// The server answers a fresh well-formed request — the liveness probe run
/// after every abuse below.
fn assert_alive(addr: std::net::SocketAddr) {
    let (mut s, mut r) = connect(addr);
    let pong = roundtrip(&mut s, &mut r, "{\"op\":\"ping\"}");
    assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
}

fn hostile_clients_get_errors_not_a_dead_server(frontend: Frontend) {
    let handle = started_server(cfg_for(frontend));
    let addr = handle.addr();

    // (a) Oversized request line: one error response, then disconnect —
    // the server must not buffer the line unboundedly.
    {
        let (mut s, mut r) = connect(addr);
        let blob = vec![b'a'; exageostat_rs::server::MAX_LINE_BYTES + (64 << 10)];
        // The server stops reading after the cap, so push the payload in
        // chunks and tolerate the connection dying under us.
        for chunk in blob.chunks(64 << 10) {
            if s.write_all(chunk).is_err() {
                break;
            }
        }
        let mut line = String::new();
        let n = r.read_line(&mut line).unwrap_or(0);
        assert!(n > 0, "expected an error response before the close");
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            v.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("exceeds"),
            "{line}"
        );
        // Ending the over-long line releases the server's discard loop;
        // the connection then closes — it is not left half-alive.
        let _ = s.write_all(b"\n");
        let mut rest = String::new();
        assert_eq!(r.read_line(&mut rest).unwrap_or(0), 0);
    }
    assert_alive(addr);

    // (b) Nesting bomb: deep but short — must be a parse error, not a
    // parser stack overflow, and the connection survives.
    {
        let (mut s, mut r) = connect(addr);
        let bomb = "[".repeat(200_000);
        let v = roundtrip(&mut s, &mut r, &bomb);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            v.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("nesting"),
            "{v:?}"
        );
        let pong = roundtrip(&mut s, &mut r, "{\"op\":\"ping\"}");
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
    }

    // (c) Non-finite coordinates (1e999 overflows to +inf in any float
    // grammar) are refused before they can poison a solve; the id still
    // comes back on the error.
    {
        let (mut s, mut r) = connect(addr);
        let v = roundtrip(
            &mut s,
            &mut r,
            "{\"op\":\"predict\",\"id\":\"nan1\",\"points\":[[1e999,0.5]]}",
        );
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            v.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("non-finite"),
            "{v:?}"
        );
        assert_eq!(v.get("id").unwrap().as_str(), Some("nan1"));
    }

    // (d) Binary garbage (invalid UTF-8): a parse error, not a panic.
    {
        let (mut s, mut r) = connect(addr);
        s.write_all(&[0xff, 0xfe, 0x80, 0x9f, b'\n']).unwrap();
        let mut line = String::new();
        assert!(r.read_line(&mut line).unwrap() > 0);
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        let pong = roundtrip(&mut s, &mut r, "{\"op\":\"ping\"}");
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
    }

    // (e) Half-written request, then hang up (slow-loris cousin): the
    // handler reaps the connection on EOF without an answer and without
    // damage.
    {
        let (mut s, _r) = connect(addr);
        s.write_all(b"{\"op\":\"predict\",\"poin").unwrap();
        drop(s);
    }
    // (f) Connect and say nothing, then hang up.
    {
        let (s, _r) = connect(addr);
        drop(s);
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_alive(addr);

    // The whole corpus is visible in the error census, and a clean drain
    // still works afterwards.
    let (mut s, mut r) = connect(addr);
    let m = roundtrip(&mut s, &mut r, "{\"op\":\"metrics\"}");
    assert!(m.get("metrics").is_some());
    handle.shutdown();
    let report = handle.join();
    assert!(report.tasks >= 8, "census too small: {}", report.tasks);
}

#[test]
fn hostile_clients_threaded() {
    hostile_clients_get_errors_not_a_dead_server(Frontend::Threaded);
}

#[test]
fn hostile_clients_reactor() {
    hostile_clients_get_errors_not_a_dead_server(Frontend::Reactor);
}

fn ping_is_not_blocked_behind_queued_predicts(frontend: Frontend) {
    // One solver and small batches: the predict backlog stays queued long
    // enough for the ping to overtake it.
    let handle = started_server(ServerConfig {
        solvers: 1,
        max_batch_points: 64,
        ..cfg_for(frontend)
    });
    let (mut s, mut r) = connect(handle.addr());

    // Pipeline 30 expensive predicts on ONE connection…
    let n_predicts = 30;
    let pts: String = (0..64)
        .map(|i| format!("[{:.4},{:.4}]", 0.015 * (i % 60) as f64, 0.4))
        .collect::<Vec<_>>()
        .join(",");
    for seq in 0..n_predicts {
        let req = format!(
            "{{\"op\":\"predict\",\"id\":{seq},\"points\":[{pts}],\"uncertainty\":true}}\n"
        );
        s.write_all(req.as_bytes()).unwrap();
    }
    // …then a ping on the same connection.
    s.write_all(b"{\"op\":\"ping\",\"id\":\"p\"}\n").unwrap();

    // Collect all 31 responses, in whatever order the server answers.
    let mut order = Vec::new();
    let mut predict_ids = Vec::new();
    for _ in 0..=n_predicts {
        let mut line = String::new();
        assert!(r.read_line(&mut line).unwrap() > 0, "server hung up");
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
        match v.get("id").unwrap().as_str() {
            Some("p") => order.push("ping".to_string()),
            _ => {
                let id = v.get("id").unwrap().as_usize().unwrap();
                predict_ids.push(id);
                order.push(format!("predict-{id}"));
            }
        }
    }
    // Every accepted request was answered, ids correlate exactly…
    let mut sorted = predict_ids.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..n_predicts).collect::<Vec<_>>());
    // …and the ping overtook the predict backlog. A head-of-line-blocking
    // server would answer it dead last.
    let ping_pos = order.iter().position(|o| o == "ping").unwrap();
    assert!(
        ping_pos < n_predicts,
        "ping was answered last — head-of-line blocked: {order:?}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn ping_overtakes_predicts_threaded() {
    ping_is_not_blocked_behind_queued_predicts(Frontend::Threaded);
}

#[test]
fn ping_overtakes_predicts_reactor() {
    ping_is_not_blocked_behind_queued_predicts(Frontend::Reactor);
}

fn expired_deadlines_are_answered_not_dropped(frontend: Frontend) {
    let handle = started_server(cfg_for(frontend));
    let (mut s, mut r) = connect(handle.addr());

    // deadline_ms:0 is already expired by the time a solver dequeues it —
    // the response must still arrive (a timeout error, not silence).
    let v = roundtrip(
        &mut s,
        &mut r,
        "{\"op\":\"predict\",\"id\":7,\"points\":[[0.4,0.6]],\"deadline_ms\":0}",
    );
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    assert!(
        v.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("deadline"),
        "{v:?}"
    );
    assert_eq!(v.get("id").unwrap().as_usize(), Some(7));

    // A generous deadline is not triggered by a healthy server.
    let v = roundtrip(
        &mut s,
        &mut r,
        "{\"op\":\"predict\",\"points\":[[0.4,0.6]],\"deadline_ms\":30000}",
    );
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{v:?}");

    // The expiry shows up in the metrics census.
    let m = roundtrip(&mut s, &mut r, "{\"op\":\"metrics\"}");
    let kernels = m
        .get("metrics")
        .unwrap()
        .get("kernels")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|k| k.get("kind").and_then(|s| s.as_str().map(str::to_string)))
        .collect::<Vec<_>>();
    assert!(kernels.iter().any(|k| k == "deadline"), "{kernels:?}");

    handle.shutdown();
    handle.join();
}

#[test]
fn expired_deadlines_threaded() {
    expired_deadlines_are_answered_not_dropped(Frontend::Threaded);
}

#[test]
fn expired_deadlines_reactor() {
    expired_deadlines_are_answered_not_dropped(Frontend::Reactor);
}

fn overload_sheds_with_a_retry_hint_and_answers_everything(frontend: Frontend) {
    // A one-point budget: the moment anything is queued, further predicts
    // are shed.
    let handle = started_server(ServerConfig {
        solvers: 1,
        max_queued_points: 1,
        ..cfg_for(frontend)
    });
    let (mut s, mut r) = connect(handle.addr());

    let n = 200;
    for seq in 0..n {
        let req = format!("{{\"op\":\"predict\",\"id\":{seq},\"points\":[[0.3,0.7],[0.6,0.2]]}}\n");
        s.write_all(req.as_bytes()).unwrap();
    }
    let (mut ok, mut shed) = (0usize, 0usize);
    let mut seen = vec![false; n];
    for _ in 0..n {
        let mut line = String::new();
        assert!(r.read_line(&mut line).unwrap() > 0, "server hung up");
        let v = parse_json(&line).unwrap();
        let id = v.get("id").unwrap().as_usize().unwrap();
        assert!(!seen[id], "duplicate response for id {id}");
        seen[id] = true;
        if v.get("ok").unwrap().as_bool() == Some(true) {
            ok += 1;
        } else {
            let hint = v
                .get("retry_after_ms")
                .and_then(|h| h.as_usize())
                .unwrap_or_else(|| panic!("shed response without retry hint: {line}"));
            assert!((1..=10_000).contains(&hint));
            shed += 1;
        }
    }
    // Exactly one response per request; under a 1-point budget a 200-deep
    // burst must shed some and still serve some (the empty-queue push
    // always succeeds).
    assert_eq!(ok + shed, n);
    assert!(ok >= 1, "nothing served");
    assert!(shed >= 1, "nothing shed under a 1-point budget");

    let m = roundtrip(&mut s, &mut r, "{\"op\":\"metrics\"}");
    let metrics = m.get("metrics").unwrap().to_json_string();
    assert!(metrics.contains("\"shed\""), "{metrics}");

    handle.shutdown();
    handle.join();
}

#[test]
fn overload_sheds_threaded() {
    overload_sheds_with_a_retry_hint_and_answers_everything(Frontend::Threaded);
}

#[test]
fn overload_sheds_reactor() {
    overload_sheds_with_a_retry_hint_and_answers_everything(Frontend::Reactor);
}

fn slow_loris_writer_cannot_stall_other_clients(frontend: Frontend) {
    let handle = started_server(cfg_for(frontend));
    let addr = handle.addr();

    // A client dribbling one byte at a time holds its own connection open…
    let mut loris = TcpStream::connect(addr).unwrap();
    let partial = b"{\"op\":\"pre";
    for b in partial {
        loris.write_all(&[*b]).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }

    // …while everyone else is served normally.
    for _ in 0..3 {
        assert_alive(addr);
    }

    // The loris finishing its line still gets a proper answer.
    loris
        .write_all(b"dict\",\"points\":[[0.5,0.5]]}\n")
        .unwrap();
    let mut r = BufReader::new(loris.try_clone().unwrap());
    let mut line = String::new();
    assert!(r.read_line(&mut line).unwrap() > 0);
    let v = parse_json(&line).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
    drop(loris);

    handle.shutdown();
    handle.join();
}

#[test]
fn slow_loris_threaded() {
    slow_loris_writer_cannot_stall_other_clients(Frontend::Threaded);
}

#[test]
fn slow_loris_reactor() {
    slow_loris_writer_cannot_stall_other_clients(Frontend::Reactor);
}

fn loadgen_survives_a_mid_run_shutdown(frontend: Frontend) {
    // Kill the server while the generator is mid-stream: loadgen must
    // report failures, not panic (exercised through the public API the
    // binary wraps).
    let handle = started_server(cfg_for(frontend));
    let addr = handle.addr().to_string();

    let gen = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            exageostat_rs::server::loadgen::run(&LoadgenConfig {
                addr,
                requests: 20_000,
                conns: 3,
                points: 4,
                // Throttled so the stream is guaranteed to still be in
                // flight when the server goes away.
                rate: 2000.0,
                concurrency_per_conn: 4,
                connect_timeout: Duration::from_secs(5),
                ..LoadgenConfig::default()
            })
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    handle.shutdown();
    handle.join();

    let report = gen.join().expect("loadgen must not panic").expect("run");
    assert!(
        report.errors > 0,
        "a mid-run shutdown must surface as failures: {}",
        report.summary()
    );
    // Every request is accounted for exactly once, success or failure.
    assert_eq!(
        report.sent + report.errors + report.shed + report.expired,
        20_000
    );
}

#[test]
fn loadgen_mid_run_shutdown_threaded() {
    loadgen_survives_a_mid_run_shutdown(Frontend::Threaded);
}

#[test]
fn loadgen_mid_run_shutdown_reactor() {
    loadgen_survives_a_mid_run_shutdown(Frontend::Reactor);
}

//! End-to-end smoke test of the prediction service: an in-process server
//! on a loopback port, hammered by the load generator. Mirrors the CI
//! smoke step (which drives the `exageostat serve` + `loadgen` binaries
//! over a real process boundary) so the same guarantees are checked in
//! `cargo test` without process management:
//!
//! - a few hundred concurrent requests complete with zero errors;
//! - two identical-seed runs produce identical checksums even though the
//!   server batches them differently (batching never changes results);
//! - shutdown drains cleanly and the exported metrics census accounts for
//!   every request.

use std::sync::Arc;
use std::time::Duration;

use exageostat_rs::prelude::*;
use exageostat_rs::server::{build_plan, loadgen};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn serve_loadgen_drain() {
    // One fitted model: 200 sites, mixed-precision factor.
    let mut rng = StdRng::seed_from_u64(99);
    let mut locs = jittered_grid(200, &mut rng);
    morton_order(&mut locs);
    let kernel = ModelFamily::MaternSpace.kernel(&[1.0, 0.1, 0.5]);
    let z = simulate_field(kernel.as_ref(), &locs, 99);
    let (plan, llh) = build_plan(
        ModelFamily::MaternSpace,
        &[1.0, 0.1, 0.5],
        Variant::MpDense,
        50,
        locs,
        &z,
        2,
    )
    .unwrap();
    assert!(llh.is_finite());

    let registry = Arc::new(ModelRegistry::new());
    registry.insert("default", plan);
    let handle = serve(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            solvers: 3,
            max_batch_points: 64,
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("bind loopback");
    let addr = handle.addr().to_string();

    let cfg = LoadgenConfig {
        addr: addr.clone(),
        requests: 150,
        conns: 6,
        points: 5,
        uncertainty: true,
        seed: 42,
        connect_timeout: Duration::from_secs(5),
        ..LoadgenConfig::default()
    };
    let first = loadgen::run(&cfg).expect("first run");
    assert_eq!(first.errors, 0, "{}", first.summary());
    assert_eq!(first.sent, 150);
    assert!(first.throughput > 0.0);
    assert!(first.server_metrics.is_some(), "metrics fetch failed");

    // Same seed, same split — the request set is identical, but thread
    // scheduling coalesces it into different batches each run, and this
    // run additionally pipelines 5 requests per connection so the server
    // answers out of order; every answer must still be bit-equal for the
    // XOR-folded checksums to match. (The per-connection RNG streams
    // depend on `conns`, so that knob must stay fixed across the runs.)
    let second = loadgen::run(&LoadgenConfig {
        shutdown: true,
        concurrency_per_conn: 5,
        ..cfg
    })
    .expect("second run");
    assert_eq!(second.errors, 0, "{}", second.summary());
    assert_eq!(
        first.checksum, second.checksum,
        "batching changed results: {:016x} vs {:016x}",
        first.checksum, second.checksum
    );

    // The shutdown op drains in-flight batches; join returns the final
    // census. Every accepted request must be accounted for: 300 predicts
    // plus the control traffic (metrics fetches and the shutdown op).
    let report = handle.join();
    assert!(
        (300..=310).contains(&report.tasks),
        "request census: {}",
        report.tasks
    );
    let kinds: Vec<&str> = report.kernels.iter().map(|k| k.kind).collect();
    for kind in ["request", "solve", "batch_size"] {
        assert!(kinds.contains(&kind), "missing kernel {kind} in {kinds:?}");
    }
    let solves = report
        .kernels
        .iter()
        .find(|k| k.kind == "solve")
        .unwrap()
        .count;
    assert!(
        solves <= 300,
        "batching ran more solves ({solves}) than requests"
    );
    // batch_size records points·1e-6 "seconds" once per batch, so the
    // kernel's total recovers the exact point census: 300 predicts × 5.
    let batch = report
        .kernels
        .iter()
        .find(|k| k.kind == "batch_size")
        .unwrap();
    assert_eq!((batch.total_seconds * 1e6).round() as usize, 1500);
    assert_eq!(batch.count, solves, "one size sample per batch");

    // Clean shutdown: the port is no longer accepting.
    assert!(loadgen::connect_with_retry(&addr, Duration::from_millis(200)).is_err());
}

//! # exageostat-rs
//!
//! A from-scratch Rust reproduction of *"Reshaping Geostatistical Modeling
//! and Prediction for Extreme-Scale Environmental Applications"* (SC '22
//! Gordon Bell finalist): geostatistical maximum-likelihood modeling and
//! kriging prediction through a **mixed-precision + tile-low-rank (TLR)
//! Cholesky** solver running on a **PaRSEC-style dynamic task runtime**.
//!
//! ## Quick start
//!
//! ```
//! use exageostat_rs::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. Locations and a synthetic Matérn field (σ²=1, range=0.1, ν=0.5).
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut locs = jittered_grid(400, &mut rng);
//! morton_order(&mut locs);
//! let truth = Matern::new(MaternParams::new(1.0, 0.1, 0.5));
//! let z = simulate_field(&truth, &locs, 1);
//!
//! // 2. Evaluate the Gaussian log-likelihood through the adaptive
//! //    mixed-precision + TLR tile Cholesky.
//! let cfg = TlrConfig::new(Variant::MpDenseTlr, 100);
//! let model = FlopKernelModel::default();
//! let report = log_likelihood(&truth, &locs, &z, &cfg, &model, 1).unwrap();
//! assert!(report.llh.is_finite());
//!
//! // 3. Krige held-out points with uncertainty, reusing the factor.
//! let test = [Location::new(0.5, 0.5)];
//! let pred = krige(&truth, &locs, &z, &report.factor, &test, true);
//! assert!(pred.uncertainty.unwrap()[0] >= 0.0);
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | application | [`xgs_core`] | MLE, kriging, optimizers, pipelines |
//! | solver | [`xgs_cholesky`] | the three tile-Cholesky variants, tiled solves |
//! | formats | [`xgs_tile`] | tile storage, precision/structure decisions, band tuning |
//! | runtime | [`xgs_runtime`] | dataflow DAG, workers, distributed simulation |
//! | statistics | [`xgs_covariance`] | Matérn, Gneiting space–time, Bessel, Morton |
//! | numerics | [`xgs_linalg`] | Matrix, QR, Jacobi SVD, ACA, low-rank algebra |
//! | kernels | [`xgs_kernels`] | GEMM/SYRK/TRSM/POTRF in FP64/FP32/emulated FP16 |
//! | modeling | [`xgs_perfmodel`] | A64FX calibration, Fugaku-scale projection |

pub mod cli;

pub use xgs_cholesky as cholesky;
pub use xgs_core as core;
pub use xgs_covariance as covariance;
pub use xgs_kernels as kernels;
pub use xgs_linalg as linalg;
pub use xgs_perfmodel as perfmodel;
pub use xgs_runtime as runtime;
pub use xgs_server as server;
pub use xgs_tile as tile;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use xgs_cholesky::{logdet, solve_lower, solve_lower_transpose, TiledFactor};
    pub use xgs_core::{
        fit, krige, log_likelihood, mspe, nelder_mead, particle_swarm, run_pipeline,
        simulate_field, simulate_fields, solve_weights, FitOptions, ModelFamily, PipelineConfig,
        PredictionPlan,
    };
    pub use xgs_covariance::{
        bessel_k, jittered_grid, matern_correlation, morton_order, spacetime_grid,
        uniform_locations, CovarianceKernel, GneitingSpaceTime, Location, Matern, MaternParams,
        SpaceTimeParams,
    };
    pub use xgs_kernels::{Half, Precision};
    pub use xgs_linalg::{LowRank, Matrix};
    pub use xgs_perfmodel::{
        project, project_with_metrics, Correlation, ScaleConfig, SolverVariant,
    };
    pub use xgs_runtime::{execute, parse_json, Access, DataId, JsonValue, TaskGraph};
    pub use xgs_server::{serve, Frontend, LoadgenConfig, ModelRegistry, ServerConfig};
    pub use xgs_tile::{
        decision_heatmap, FlopKernelModel, KernelTimeModel, SymTileMatrix, TlrConfig, Variant,
    };
}

//! Minimal `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Parse errors carry a human-oriented message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse `argv[1..]`: first token is the subcommand, the rest
    /// `--key value` pairs (`--key` alone is a boolean `true`).
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut it = argv.iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand".into()))?
            .clone();
        let mut flags = BTreeMap::new();
        let rest: Vec<&String> = it.collect();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i]
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected --flag, got '{}'", rest[i])))?;
            if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                flags.insert(key.to_string(), rest[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        }
        Ok(Args { command, flags })
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects an integer, got '{v}'"))),
        }
    }

    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    pub fn bool(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Comma-separated float list.
    pub fn f64_list(&self, key: &str) -> Result<Option<Vec<f64>>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("--{key}: bad number '{s}'")))
                })
                .collect::<Result<Vec<f64>, _>>()
                .map(Some),
        }
    }

    /// Required flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&argv("fit --n 100 --kernel matern --uncertainty")).unwrap();
        assert_eq!(a.command, "fit");
        assert_eq!(a.usize_or("n", 0).unwrap(), 100);
        assert_eq!(a.get("kernel"), Some("matern"));
        assert!(a.bool("uncertainty"));
        assert!(!a.bool("absent"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv("simulate")).unwrap();
        assert_eq!(a.usize_or("n", 42).unwrap(), 42);
        assert_eq!(a.f64_or("domain", 1.5).unwrap(), 1.5);
        assert_eq!(a.str_or("kernel", "matern"), "matern");
    }

    #[test]
    fn float_lists() {
        let a = Args::parse(&argv("fit --params 1.0,0.1,0.5")).unwrap();
        assert_eq!(a.f64_list("params").unwrap().unwrap(), vec![1.0, 0.1, 0.5]);
        assert!(a.f64_list("missing").unwrap().is_none());
        let bad = Args::parse(&argv("fit --params 1.0,x")).unwrap();
        assert!(bad.f64_list("params").is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(Args::parse(&[]).is_err());
        let a = Args::parse(&argv("fit --n ten")).unwrap();
        let e = a.usize_or("n", 0).unwrap_err();
        assert!(e.0.contains("--n"));
        let a2 = Args::parse(&argv("fit")).unwrap();
        assert!(a2.require("data").is_err());
    }

    #[test]
    fn rejects_positional_garbage() {
        assert!(Args::parse(&argv("fit stray")).is_err());
    }
}

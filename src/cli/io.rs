//! CSV I/O for observation datasets.
//!
//! Format: header `x,y[,t][,z]`, one site per row. The `t` column marks a
//! space–time dataset; the `z` column carries measurements (absent for
//! prediction-target files).

use std::io::{BufRead, Write};
use xgs_covariance::Location;

/// A loaded dataset: sites plus (optionally) one measurement per site.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    pub locs: Vec<Location>,
    pub z: Option<Vec<f64>>,
    pub has_time: bool,
}

/// I/O + format errors.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "csv format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse a dataset from any reader.
pub fn read_dataset<R: BufRead>(reader: R) -> Result<Dataset, IoError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| IoError::Format("empty file".into()))??;
    let cols: Vec<String> = header.split(',').map(|c| c.trim().to_lowercase()).collect();
    let x_idx = find(&cols, "x")?;
    let y_idx = find(&cols, "y")?;
    let t_idx = cols.iter().position(|c| c == "t");
    let z_idx = cols.iter().position(|c| c == "z");

    let mut locs = Vec::new();
    let mut z: Vec<f64> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let get = |idx: usize| -> Result<f64, IoError> {
            fields
                .get(idx)
                .ok_or_else(|| IoError::Format(format!("line {}: missing column", lineno + 2)))?
                .trim()
                .parse()
                .map_err(|_| IoError::Format(format!("line {}: bad number", lineno + 2)))
        };
        let x = get(x_idx)?;
        let y = get(y_idx)?;
        let t = match t_idx {
            Some(i) => get(i)?,
            None => 0.0,
        };
        locs.push(Location::new_st(x, y, t));
        if let Some(i) = z_idx {
            z.push(get(i)?);
        }
    }
    Ok(Dataset {
        locs,
        z: z_idx.map(|_| z),
        has_time: t_idx.is_some(),
    })
}

fn find(cols: &[String], name: &str) -> Result<usize, IoError> {
    cols.iter()
        .position(|c| c == name)
        .ok_or_else(|| IoError::Format(format!("missing required column '{name}'")))
}

/// Write a dataset (with optional per-site extras like predictions or
/// uncertainties) to any writer.
pub fn write_dataset<W: Write>(
    mut w: W,
    locs: &[Location],
    columns: &[(&str, &[f64])],
    with_time: bool,
) -> Result<(), IoError> {
    let mut header = String::from("x,y");
    if with_time {
        header.push_str(",t");
    }
    for (name, vals) in columns {
        assert_eq!(vals.len(), locs.len(), "column '{name}' length mismatch");
        header.push(',');
        header.push_str(name);
    }
    writeln!(w, "{header}")?;
    for (i, l) in locs.iter().enumerate() {
        let mut row = format!("{},{}", l.x, l.y);
        if with_time {
            row.push_str(&format!(",{}", l.t));
        }
        for (_, vals) in columns {
            row.push_str(&format!(",{}", vals[i]));
        }
        writeln!(w, "{row}")?;
    }
    Ok(())
}

/// Load a dataset from a path.
pub fn load(path: &str) -> Result<Dataset, IoError> {
    let f = std::fs::File::open(path)?;
    read_dataset(std::io::BufReader::new(f))
}

/// Save to a path.
pub fn save(
    path: &str,
    locs: &[Location],
    columns: &[(&str, &[f64])],
    with_time: bool,
) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    write_dataset(std::io::BufWriter::new(f), locs, columns, with_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_space_dataset() {
        let locs = vec![Location::new(0.1, 0.2), Location::new(0.3, 0.4)];
        let z = vec![1.5, -2.5];
        let mut buf = Vec::new();
        write_dataset(&mut buf, &locs, &[("z", &z)], false).unwrap();
        let ds = read_dataset(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(ds.locs.len(), 2);
        assert!(!ds.has_time);
        assert_eq!(ds.z.as_ref().unwrap(), &z);
        assert_eq!(ds.locs[1].x, 0.3);
    }

    #[test]
    fn roundtrip_spacetime_dataset() {
        let locs = vec![
            Location::new_st(0.1, 0.2, 1.0),
            Location::new_st(0.3, 0.4, 2.0),
        ];
        let mut buf = Vec::new();
        write_dataset(&mut buf, &locs, &[], true).unwrap();
        let ds = read_dataset(std::io::Cursor::new(buf)).unwrap();
        assert!(ds.has_time);
        assert!(ds.z.is_none());
        assert_eq!(ds.locs[1].t, 2.0);
    }

    #[test]
    fn header_order_is_flexible() {
        let csv = "z, y ,x\n7.0,0.2,0.1\n";
        let ds = read_dataset(std::io::Cursor::new(csv)).unwrap();
        assert_eq!(ds.locs[0].x, 0.1);
        assert_eq!(ds.locs[0].y, 0.2);
        assert_eq!(ds.z.unwrap()[0], 7.0);
    }

    #[test]
    fn reports_bad_rows_with_line_numbers() {
        let csv = "x,y,z\n0.1,0.2,1.0\n0.3,oops,2.0\n";
        let err = read_dataset(std::io::Cursor::new(csv)).unwrap_err();
        match err {
            IoError::Format(m) => assert!(m.contains("line 3"), "{m}"),
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn missing_columns_rejected() {
        let err = read_dataset(std::io::Cursor::new("a,b\n1,2\n")).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "x,y\n0.1,0.2\n\n0.3,0.4\n";
        let ds = read_dataset(std::io::Cursor::new(csv)).unwrap();
        assert_eq!(ds.locs.len(), 2);
    }
}

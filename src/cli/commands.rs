//! CLI subcommand implementations.
//!
//! Each command is a thin orchestration over the library crates and returns
//! its report as a `String` (so the logic is unit-testable without touching
//! stdout).

use crate::cli::args::{ArgError, Args};
use crate::cli::io;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use xgs_cholesky::{worker_loop_with, ChaosSpec, ShardBackend, WorkerOptions};
use xgs_core::mle::{FitOptimizer, FitOptions};
use xgs_core::{
    krige, log_likelihood_engine, mspe, simulate_field, FactorEngine, ModelFamily,
    NelderMeadOptions, PsoOptions,
};
use xgs_covariance::{jittered_grid, morton_order, spacetime_grid, CovarianceKernel};
use xgs_fleet::{FleetConfig, Supervisor};
use xgs_perfmodel::{project_with_metrics, Correlation, ScaleConfig, SolverVariant};
use xgs_tile::{
    decision_heatmap, FlopKernelModel, PrecisionRule, SymTileMatrix, TlrConfig, Variant,
};

/// Top-level command error.
#[derive(Debug)]
pub enum CmdError {
    Arg(ArgError),
    Io(io::IoError),
    Run(String),
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmdError::Arg(e) => write!(f, "{e}"),
            CmdError::Io(e) => write!(f, "{e}"),
            CmdError::Run(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CmdError {}

impl From<ArgError> for CmdError {
    fn from(e: ArgError) -> Self {
        CmdError::Arg(e)
    }
}

impl From<io::IoError> for CmdError {
    fn from(e: io::IoError) -> Self {
        CmdError::Io(e)
    }
}

pub const USAGE: &str = "\
exageostat — geostatistical modeling & prediction with the MP+TLR tile Cholesky

USAGE: exageostat <command> [--flag value ...]

COMMANDS:
  simulate  generate a synthetic dataset
            --n <sites> --params <θ,..> [--kernel matern|gneiting]
            [--slots <t>] [--domain <d>] [--seed <s>] --out <csv>
  fit       maximum-likelihood estimation
            --data <csv> [--kernel matern|gneiting] [--variant dense|mp|mp-tlr]
            [--tile <nb>] [--start <θ,..>] [--max-evals <k>]
            [--optimizer nm|pso] [--workers <w>] [--precision-rule adaptive|band]
            [--shards <k>]  (factorize on a warm fleet of k workers, see README)
            [--standbys <k>]  (warm spare workers promoted on death)
            [--se]  (append observed-information standard errors)
            [--metrics <json>]  (write merged runtime metrics, see README)
  predict   kriging at target sites
            --data <csv> --targets <csv> --theta <θ,..> [--kernel ...]
            [--variant ...] [--tile <nb>] [--uncertainty] [--out <csv>]
            [--shards <k>] [--standbys <k>]  (warm worker fleet)
            [--metrics <json>]  (write the factorization's runtime metrics)
  maps      per-tile format decision map (Fig. 9 style)
            --data <csv> --theta <θ,..> [--kernel ...] [--variant ...] [--tile <nb>]
  scale     simulated Fugaku-scale run (Figs. 7/10/11 style)
            --n <size> --nodes <p> [--nb <tile>] [--corr weak|medium|strong|st-strong]
            [--variant dense|fp32|mp|mp-tlr]
            [--metrics <json>]  (write the event replay's kernel census)
  serve     long-lived prediction service with a cached factor
            --data <csv> --theta <θ,..> [--kernel ...] [--variant ...] [--tile <nb>]
            [--name <model>] [--addr <host:port>] [--solvers <k>] [--max-batch <points>]
            [--frontend threaded|reactor]  (thread-per-connection vs epoll event loop)
            [--queue-points <budget>]  (shed predicts past this backlog)
            [--max-models <k>] [--model-ttl <seconds>]  (registry LRU/TTL eviction)
            [--shards <k>] [--standbys <k>]  (persistent warm worker fleet)
            [--metrics <json>]  (write the server metrics after shutdown)
            protocol: newline-delimited JSON over TCP, see README;
            stop with {\"op\":\"shutdown\"} (drains in-flight batches)
  worker    one shard of a --shards factorization (started automatically;
            external machines may dial a fleet's registration address)
            --connect <host:port>  (supervisor registration address)
            [--handshake-timeout <s>] [--idle-timeout <s>]  (liveness budgets)
  bayes     posterior sampling over the covariance parameters (MCMC)
            --data <csv> --start <θ,..> [--kernel ...] [--variant ...]
            [--iterations <k>] [--burn-in <k>] [--seed <s>]

ENVIRONMENT:
  XGS_PRECHECK=1  run the pre-execution DAG/shard-plan safety checks
                  (xgs-analysis) in release builds too; always on in
                  debug builds. See README \"Static analysis\".
  XGS_CHAOS_ABORT=member=M,tasks=N | member=M,on=drain
                  fault injection: the fleet member with ASSIGNed id M
                  SIGKILLs itself at the named point (chaos tests only).
";

fn parse_family(args: &Args) -> Result<ModelFamily, CmdError> {
    match args.str_or("kernel", "matern").as_str() {
        "matern" => Ok(ModelFamily::MaternSpace),
        "gneiting" => Ok(ModelFamily::GneitingSpaceTime),
        other => Err(CmdError::Arg(ArgError(format!(
            "unknown kernel '{other}' (matern|gneiting)"
        )))),
    }
}

/// Validate a user-supplied parameter vector against the family's arity.
fn check_theta_len(family: ModelFamily, theta: &[f64], flag: &str) -> Result<(), CmdError> {
    if theta.len() != family.n_params() {
        return Err(CmdError::Arg(ArgError(format!(
            "--{flag} expects {} values for this kernel, got {}",
            family.n_params(),
            theta.len()
        ))));
    }
    Ok(())
}

fn parse_variant(args: &Args) -> Result<Variant, CmdError> {
    match args.str_or("variant", "mp-tlr").as_str() {
        "dense" => Ok(Variant::DenseF64),
        "mp" => Ok(Variant::MpDense),
        "mp-tlr" => Ok(Variant::MpDenseTlr),
        other => Err(CmdError::Arg(ArgError(format!(
            "unknown variant '{other}' (dense|mp|mp-tlr)"
        )))),
    }
}

fn tile_config(args: &Args, variant: Variant, n: usize) -> Result<TlrConfig, CmdError> {
    let nb = args.usize_or("tile", (n / 10).clamp(32, 512))?;
    let mut cfg = TlrConfig::new(variant, nb);
    match args.str_or("precision-rule", "adaptive").as_str() {
        "adaptive" => {}
        "band" => {
            cfg.precision_rule = PrecisionRule::Band {
                f64_band: args.usize_or("f64-band", 3)?,
                f32_band: args.usize_or("f32-band", 8)?,
            };
        }
        other => {
            return Err(CmdError::Arg(ArgError(format!(
                "unknown precision rule '{other}' (adaptive|band)"
            ))))
        }
    }
    Ok(cfg)
}

/// `--metrics <path>`: dump a runtime metrics report as JSON, or note why
/// there is none (the sequential engine collects nothing).
fn write_metrics(
    args: &Args,
    metrics: Option<&xgs_runtime::MetricsReport>,
    out: &mut String,
) -> Result<(), CmdError> {
    let Some(path) = args.get("metrics") else {
        return Ok(());
    };
    match metrics {
        Some(m) => {
            std::fs::write(path, m.to_json())
                .map_err(|e| CmdError::Run(format!("could not write metrics to {path}: {e}")))?;
            out.push_str(&format!("wrote runtime metrics to {path}\n"));
        }
        None => out.push_str(
            "no runtime metrics to write: the sequential engine ran (use --workers != 1)\n",
        ),
    }
    Ok(())
}

/// `--shards N`: a persistent warm fleet (`xgs-fleet`) of N worker
/// processes of this same executable, reused across every factorization
/// the command makes, with standby promotion / local respawn when a
/// worker dies mid-run (0 / absent = in-process engines). `--standbys K`
/// registers K warm spares beyond the grid.
fn shard_backend(args: &Args) -> Result<Option<Arc<dyn ShardBackend>>, CmdError> {
    match args.usize_or("shards", 0)? {
        0 => Ok(None),
        n => {
            let exe = std::env::current_exe()
                .map_err(|e| CmdError::Run(format!("cannot locate the worker executable: {e}")))?;
            let mut cfg = FleetConfig::process(exe, n);
            cfg.standbys = args.usize_or("standbys", 0)?;
            let fleet = Supervisor::start(cfg)
                .map_err(|e| CmdError::Run(format!("cannot start the worker fleet: {e}")))?;
            Ok(Some(Arc::new(fleet) as Arc<dyn ShardBackend>))
        }
    }
}

/// Engine selection shared by `predict` and `serve`: sharded when
/// `--shards` is set, otherwise the `--workers` convention.
fn factor_engine(args: &Args) -> Result<FactorEngine, CmdError> {
    Ok(match shard_backend(args)? {
        Some(backend) => FactorEngine::Sharded(backend),
        None => FactorEngine::from_workers(args.usize_or("workers", 0)?),
    })
}

/// The kernel-time model used by the CLI: TLR-friendly at small tiles,
/// calibrated behaviour at paper-scale tiles (the penalty only matters for
/// the structure decision, see DESIGN.md).
fn cli_model(nb: usize) -> FlopKernelModel {
    if nb >= 512 {
        FlopKernelModel::default()
    } else {
        FlopKernelModel {
            dense_rate: 45.0e9,
            mem_factor: 1.0,
        }
    }
}

/// `simulate` — synthesize a dataset and write it to CSV.
pub fn cmd_simulate(args: &Args) -> Result<String, CmdError> {
    let family = parse_family(args)?;
    let n = args.usize_or("n", 1000)?;
    let slots = args.usize_or("slots", 1)?;
    let domain = args.f64_or("domain", 1.0)?;
    let seed = args.usize_or("seed", 0)? as u64;
    let theta = args
        .f64_list("params")?
        .ok_or_else(|| ArgError("missing required flag --params".to_string()))?;
    check_theta_len(family, &theta, "params")?;
    let out = args.require("out")?;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut locs = match family {
        ModelFamily::MaternSpace => jittered_grid(n, &mut rng),
        ModelFamily::GneitingSpaceTime => {
            let spatial = jittered_grid(n.div_ceil(slots.max(1)), &mut rng);
            let mut st = spacetime_grid(&spatial, slots.max(1));
            st.truncate(n);
            st
        }
    };
    for l in &mut locs {
        l.x *= domain;
        l.y *= domain;
    }
    morton_order(&mut locs);
    let kernel = family.kernel(&theta);
    let z = simulate_field(kernel.as_ref(), &locs, seed + 1);
    io::save(
        out,
        &locs,
        &[("z", &z)],
        family == ModelFamily::GneitingSpaceTime,
    )?;
    Ok(format!(
        "wrote {n} sites to {out} (kernel {:?}, θ = {theta:?}, seed {seed})",
        family
    ))
}

/// `fit` — MLE on a CSV dataset.
pub fn cmd_fit(args: &Args) -> Result<String, CmdError> {
    let family = parse_family(args)?;
    let variant = parse_variant(args)?;
    let ds = io::load(args.require("data")?)?;
    let z =
        ds.z.as_ref()
            .ok_or_else(|| CmdError::Run("dataset has no 'z' column to fit".into()))?;
    let cfg = tile_config(args, variant, ds.locs.len())?;
    let model = cli_model(cfg.tile_size);

    let max_evals = args.usize_or("max-evals", 200)?;
    let workers = args.usize_or("workers", 0)?;
    let optimizer = match args.str_or("optimizer", "nm").as_str() {
        "nm" => FitOptimizer::NelderMead(NelderMeadOptions {
            max_evals,
            f_tol: 1e-6,
            initial_step: 0.35,
        }),
        "pso" => FitOptimizer::ParticleSwarm(PsoOptions {
            particles: args.usize_or("particles", 12)?,
            iterations: (max_evals / 12).max(1),
            ..Default::default()
        }),
        other => {
            return Err(CmdError::Arg(ArgError(format!(
                "unknown optimizer '{other}' (nm|pso)"
            ))))
        }
    };
    let start = args.f64_list("start")?;
    if let Some(st) = &start {
        check_theta_len(family, st, "start")?;
    }
    let opts = FitOptions {
        optimizer,
        start,
        workers,
        shard: shard_backend(args)?,
    };

    let (r, secs) = {
        let t = std::time::Instant::now();
        let r = xgs_core::fit(family, &ds.locs, z, &cfg, &model, &opts);
        (r, t.elapsed().as_secs_f64())
    };
    let names = family.param_names();
    let mut out = format!(
        "fitted {} ({} sites, variant {}, tile {}):\n",
        match family {
            ModelFamily::MaternSpace => "Matérn space model",
            ModelFamily::GneitingSpaceTime => "Gneiting space-time model",
        },
        ds.locs.len(),
        variant.name(),
        cfg.tile_size
    );
    for (name, v) in names.iter().zip(&r.theta) {
        out.push_str(&format!("  {name:<18} = {v:.6}\n"));
    }
    out.push_str(&format!(
        "  log-likelihood     = {:.4}\n  evaluations        = {}\n  wall seconds       = {:.2}\n",
        r.llh, r.evals, secs
    ));
    if let Some(m) = &r.metrics {
        out.push_str(&format!(
            "  runtime            = {} factorizations, {} tasks on {} workers{}\n",
            r.factorizations,
            m.tasks,
            m.workers,
            match &m.validation {
                Some(v) => format!(", {} hazard edges validated", v.edges_checked),
                None => String::new(),
            }
        ));
    }
    write_metrics(args, r.metrics.as_ref(), &mut out)?;
    if args.bool("se") {
        match xgs_core::fisher_information(
            family, &ds.locs, z, &cfg, &model, &r.theta, 5e-3, workers,
        ) {
            Ok(fi) => {
                out.push_str("observed-information standard errors (95% Wald CI):\n");
                for ((name, se), (lo, hi)) in names.iter().zip(&fi.std_errors).zip(&fi.ci95) {
                    out.push_str(&format!("  {name:<18} se {se:.4}   [{lo:.4}, {hi:.4}]\n"));
                }
            }
            Err(e) => out.push_str(&format!("standard errors unavailable: {e}\n")),
        }
    }
    Ok(out)
}

/// `predict` — kriging with optional uncertainty, written to CSV.
pub fn cmd_predict(args: &Args) -> Result<String, CmdError> {
    let family = parse_family(args)?;
    let variant = parse_variant(args)?;
    let train = io::load(args.require("data")?)?;
    let z = train
        .z
        .as_ref()
        .ok_or_else(|| CmdError::Run("training data has no 'z' column".into()))?;
    let targets = io::load(args.require("targets")?)?;
    let theta = args
        .f64_list("theta")?
        .ok_or_else(|| ArgError("missing required flag --theta".to_string()))?;
    check_theta_len(family, &theta, "theta")?;
    let cfg = tile_config(args, variant, train.locs.len())?;
    let model = cli_model(cfg.tile_size);
    let kernel = family.kernel(&theta);

    let engine = factor_engine(args)?;
    let rep = log_likelihood_engine(kernel.as_ref(), &train.locs, z, &cfg, &model, &engine)
        .map_err(|e| CmdError::Run(format!("factorization failed: {e}")))?;
    let pred = krige(
        kernel.as_ref(),
        &train.locs,
        z,
        &rep.factor,
        &targets.locs,
        args.bool("uncertainty"),
    );

    let mut summary = format!(
        "predicted {} targets from {} observations (llh at θ: {:.4})\n",
        targets.locs.len(),
        train.locs.len(),
        rep.llh
    );
    if let Some(truth) = &targets.z {
        summary.push_str(&format!(
            "MSPE vs target file's z column: {:.6}\n",
            mspe(&pred.mean, truth)
        ));
    }
    write_metrics(
        args,
        rep.exec.as_ref().and_then(|e| e.metrics.as_ref()),
        &mut summary,
    )?;
    if let Some(out) = args.get("out") {
        let mut cols: Vec<(&str, &[f64])> = vec![("pred", &pred.mean)];
        if let Some(u) = &pred.uncertainty {
            cols.push(("variance", u));
        }
        io::save(out, &targets.locs, &cols, targets.has_time)?;
        summary.push_str(&format!("wrote predictions to {out}\n"));
    }
    Ok(summary)
}

/// `maps` — render the decision heat-map for a dataset at given θ.
pub fn cmd_maps(args: &Args) -> Result<String, CmdError> {
    let family = parse_family(args)?;
    let variant = parse_variant(args)?;
    let ds = io::load(args.require("data")?)?;
    let theta = args
        .f64_list("theta")?
        .ok_or_else(|| ArgError("missing required flag --theta".to_string()))?;
    check_theta_len(family, &theta, "theta")?;
    let cfg = tile_config(args, variant, ds.locs.len())?;
    let model = cli_model(cfg.tile_size);
    let kernel: Box<dyn CovarianceKernel> = family.kernel(&theta);
    let m = SymTileMatrix::generate(kernel.as_ref(), &ds.locs, cfg, &model);
    let map = decision_heatmap(&m);
    Ok(format!(
        "variant {}, tile {}, band_size_dense {}\n{}",
        variant.name(),
        cfg.tile_size,
        m.band_size_dense,
        map.render()
    ))
}

/// `scale` — paper-scale projection.
pub fn cmd_scale(args: &Args) -> Result<String, CmdError> {
    let n = args.usize_or("n", 1_000_000)?;
    let nodes = args.usize_or("nodes", 2048)?;
    let nb = args.usize_or("nb", 800)?;
    let corr = match args.str_or("corr", "weak").as_str() {
        "weak" => Correlation::Weak,
        "medium" => Correlation::Medium,
        "strong" => Correlation::Strong,
        "st-strong" => Correlation::SpaceTimeStrong,
        other => {
            return Err(CmdError::Arg(ArgError(format!(
                "unknown correlation '{other}' (weak|medium|strong|st-strong)"
            ))))
        }
    };
    let variant = match args.str_or("variant", "mp-tlr").as_str() {
        "dense" => SolverVariant::DenseF64,
        "fp32" => SolverVariant::DenseF32,
        "mp" => SolverVariant::MpDense,
        "mp-tlr" => SolverVariant::MpDenseTlr,
        other => {
            return Err(CmdError::Arg(ArgError(format!(
                "unknown variant '{other}' (dense|fp32|mp|mp-tlr)"
            ))))
        }
    };
    let (p, metrics) = project_with_metrics(&ScaleConfig::new(n, nb, nodes, corr, variant));
    let mut out = format!(
        "n = {n}, {nodes} modeled A64FX nodes, tile {nb}, {} correlation, {}:\n\
         time-to-solution {:.1}s | {:.1} Tflop/s (dense-equivalent) | footprint {:.0} GB | \
         efficiency {:.0}% | engine: {}{}",
        corr.name(),
        variant.name(),
        p.makespan,
        p.flops / 1e12,
        p.footprint_bytes / 1e9,
        p.efficiency * 100.0,
        if p.event_simulated {
            "event"
        } else {
            "analytic"
        },
        if p.fits_in_memory {
            ""
        } else {
            " | EXCEEDS aggregate node memory"
        }
    );
    if let Some(path) = args.get("metrics") {
        match &metrics {
            Some(m) => {
                std::fs::write(path, m.to_json()).map_err(|e| {
                    CmdError::Run(format!("could not write metrics to {path}: {e}"))
                })?;
                out.push_str(&format!("\nwrote simulated kernel census to {path}"));
            }
            None => out.push_str(
                "\nno metrics to write: the analytic engine has no task-level breakdown \
                 (reduce --n or --nb so NT fits the event window)",
            ),
        }
    }
    Ok(out)
}

/// `serve` — load a dataset, factorize once, and serve predictions until a
/// client sends `{"op":"shutdown"}`.
pub fn cmd_serve(args: &Args) -> Result<String, CmdError> {
    let family = parse_family(args)?;
    let variant = parse_variant(args)?;
    let ds = io::load(args.require("data")?)?;
    let z =
        ds.z.as_ref()
            .ok_or_else(|| CmdError::Run("training data has no 'z' column".into()))?;
    let theta = args
        .f64_list("theta")?
        .ok_or_else(|| ArgError("missing required flag --theta".to_string()))?;
    check_theta_len(family, &theta, "theta")?;
    let cfg = tile_config(args, variant, ds.locs.len())?;
    let name = args.str_or("name", "default");
    let n = ds.locs.len();

    let shard = shard_backend(args)?;
    let engine = match &shard {
        Some(backend) => FactorEngine::Sharded(Arc::clone(backend)),
        None => FactorEngine::from_workers(args.usize_or("workers", 0)?),
    };
    let (plan, llh) =
        xgs_server::build_plan_engine(family, &theta, variant, cfg.tile_size, ds.locs, z, &engine)
            .map_err(CmdError::Run)?;
    let ttl = match args.f64_or("model-ttl", 0.0)? {
        t if t > 0.0 => Some(std::time::Duration::from_secs_f64(t)),
        _ => None,
    };
    let registry = Arc::new(xgs_server::ModelRegistry::with_limits(
        args.usize_or("max-models", usize::MAX)?,
        ttl,
    ));
    registry.insert(&name, plan);

    let frontend: xgs_server::Frontend = args
        .str_or("frontend", "threaded")
        .parse()
        .map_err(|e: String| ArgError(format!("--frontend: {e}")))?;
    let server_cfg = xgs_server::ServerConfig {
        addr: args.str_or("addr", "127.0.0.1:4741"),
        frontend,
        solvers: args.usize_or("solvers", 2)?,
        max_batch_points: args.usize_or("max-batch", 4096)?,
        max_queued_points: args.usize_or("queue-points", 1 << 16)?,
        shard,
        ..xgs_server::ServerConfig::default()
    };
    let handle = xgs_server::serve(&server_cfg, registry)
        .map_err(|e| CmdError::Run(format!("could not bind {}: {e}", server_cfg.addr)))?;
    // Announce readiness on stderr immediately — the command's return
    // value only prints after shutdown.
    eprintln!(
        "serving model '{name}' ({n} sites, llh {llh:.4}, variant {}, tile {}) on {} — \
         stop with {{\"op\":\"shutdown\"}}",
        variant.name(),
        cfg.tile_size,
        handle.addr()
    );
    let report = handle.join();
    let mut out = format!(
        "server drained after {:.1}s: {} requests",
        report.wall_seconds, report.tasks
    );
    if let Some(solve) = report.kernels.iter().find(|k| k.kind == "solve") {
        out.push_str(&format!(
            " in {} batches (mean solve {:.3} ms)",
            solve.count,
            solve.mean_seconds() * 1e3
        ));
    }
    out.push('\n');
    write_metrics(args, Some(&report), &mut out)?;
    Ok(out)
}

/// `bayes` — MCMC posterior over the model parameters (paper §VIII
/// extension).
pub fn cmd_bayes(args: &Args) -> Result<String, CmdError> {
    use xgs_core::bayes::{posterior_sample, McmcOptions};
    let family = parse_family(args)?;
    let variant = parse_variant(args)?;
    let ds = io::load(args.require("data")?)?;
    let z =
        ds.z.as_ref()
            .ok_or_else(|| CmdError::Run("dataset has no 'z' column".into()))?;
    let start = args
        .f64_list("start")?
        .ok_or_else(|| ArgError("missing required flag --start".to_string()))?;
    check_theta_len(family, &start, "start")?;
    let cfg = tile_config(args, variant, ds.locs.len())?;
    let model = cli_model(cfg.tile_size);
    let opts = McmcOptions {
        iterations: args.usize_or("iterations", 500)?,
        burn_in: args.usize_or("burn-in", 100)?,
        seed: args.usize_or("seed", 0xBA7E5)? as u64,
        workers: args.usize_or("workers", 0)?,
        ..Default::default()
    };
    let r = posterior_sample(family, &ds.locs, z, &cfg, &model, &start, &opts)
        .map_err(CmdError::Run)?;
    let mut out = format!(
        "posterior from {} draws (acceptance {:.0}%):
",
        r.samples.len(),
        r.acceptance * 100.0
    );
    for (i, name) in family.param_names().iter().enumerate() {
        let (lo, hi) = r.ci90[i];
        out.push_str(&format!(
            "  {name:<18} mean {:.4}   90% CI [{lo:.4}, {hi:.4}]
",
            r.mean[i]
        ));
    }
    Ok(out)
}

/// `worker` — one shard of a multi-process factorization. Registers with
/// the supervisor (the process that was started with `--shards`, or an
/// `xgs-fleet` registration address) via `JOIN`/`ASSIGN` and executes the
/// tile tasks it owns under the 2D block-cyclic distribution until told
/// to shut down. A supervisor that never acknowledges the `JOIN` (or
/// goes silent past the idle budget) is a nonzero exit with a
/// diagnostic, never an indefinite block on a fresh socket. Not meant to
/// be started by hand.
pub fn cmd_worker(args: &Args) -> Result<String, CmdError> {
    let addr = args.require("connect")?;
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CmdError::Run(format!("cannot reach coordinator at {addr}: {e}")))?;
    let mut opts = WorkerOptions::default();
    match args.f64_or("handshake-timeout", 0.0)? {
        t if t > 0.0 => opts.handshake_timeout = std::time::Duration::from_secs_f64(t),
        _ => {}
    }
    match args.f64_or("idle-timeout", 0.0)? {
        t if t > 0.0 => opts.idle_timeout = Some(std::time::Duration::from_secs_f64(t)),
        _ => {}
    }
    // Fault injection for the chaos tests: inherited by every fleet
    // member, but the spec names one member id, so exactly one worker
    // dies and its respawned replacement (fresh id) never re-triggers.
    opts.chaos = std::env::var("XGS_CHAOS_ABORT")
        .ok()
        .as_deref()
        .and_then(ChaosSpec::parse);
    let executed =
        worker_loop_with(stream, opts).map_err(|e| CmdError::Run(format!("worker failed: {e}")))?;
    Ok(format!("worker drained after {executed} tasks\n"))
}

/// Dispatch.
pub fn run(args: &Args) -> Result<String, CmdError> {
    match args.command.as_str() {
        "simulate" => cmd_simulate(args),
        "fit" => cmd_fit(args),
        "predict" => cmd_predict(args),
        "maps" => cmd_maps(args),
        "scale" => cmd_scale(args),
        "serve" => cmd_serve(args),
        "worker" => cmd_worker(args),
        "bayes" => cmd_bayes(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CmdError::Arg(ArgError(format!(
            "unknown command '{other}'\n\n{USAGE}"
        )))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn scale_command_runs_without_files() {
        let out = run(&argv(
            "scale --n 1000000 --nodes 2048 --corr weak --variant mp-tlr",
        ))
        .unwrap();
        assert!(out.contains("time-to-solution"));
        assert!(out.contains("weak"));
    }

    #[test]
    fn scale_metrics_export_follows_the_engine() {
        let dir = std::env::temp_dir().join(format!("xgs-scale-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("census.json");
        let path_s = path.to_str().unwrap();

        // Small enough for the event engine: census written and parseable.
        let out = run(&argv(&format!(
            "scale --n 40000 --nodes 16 --nb 800 --corr medium --variant mp --metrics {path_s}"
        )))
        .unwrap();
        assert!(out.contains("engine: event"), "{out}");
        assert!(out.contains("wrote simulated kernel census"), "{out}");
        let m = xgs_runtime::MetricsReport::from_json(&std::fs::read_to_string(&path).unwrap())
            .unwrap();
        assert!(m.kernels.iter().any(|k| k.kind == "gemm"));

        // Analytic route: no file, explanatory note instead.
        std::fs::remove_file(&path).unwrap();
        let out = run(&argv(&format!(
            "scale --n 2000000 --nodes 2048 --corr weak --variant mp --metrics {path_s}"
        )))
        .unwrap();
        assert!(out.contains("analytic engine has no task-level"), "{out}");
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_command_round_trips_over_tcp() {
        let dir = std::env::temp_dir().join(format!("xgs-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let data_s = data.to_str().unwrap().to_string();
        run(&argv(&format!(
            "simulate --n 200 --params 1.0,0.1,0.5 --seed 17 --out {data_s}"
        )))
        .unwrap();

        let port = 41000 + (std::process::id() % 20000) as u16;
        let metrics = dir.join("server-metrics.json");
        let metrics_s = metrics.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run(&argv(&format!(
                "serve --data {data_s} --theta 1.0,0.1,0.5 --tile 50 --variant mp \
                 --addr 127.0.0.1:{port} --solvers 2 --metrics {metrics_s}"
            )))
        });

        let report = xgs_server::loadgen::run(&xgs_server::LoadgenConfig {
            addr: format!("127.0.0.1:{port}"),
            requests: 40,
            conns: 3,
            points: 4,
            shutdown: true,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(report.errors, 0, "{}", report.summary());
        assert_eq!(report.sent, 40);

        let out = server.join().unwrap().unwrap();
        assert!(out.contains("server drained"), "{out}");
        assert!(out.contains("wrote runtime metrics"), "{out}");
        let m = xgs_runtime::MetricsReport::from_json(&std::fs::read_to_string(&metrics).unwrap())
            .unwrap();
        // 40 predicts + loadgen's metrics fetch + shutdown op.
        assert!(m.tasks >= 42, "served {} requests", m.tasks);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_fit_predict_pipeline_via_tempfiles() {
        let dir = std::env::temp_dir().join(format!("xgs-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let data_s = data.to_str().unwrap();

        let out = run(&argv(&format!(
            "simulate --n 300 --params 1.0,0.1,0.5 --seed 3 --out {data_s}"
        )))
        .unwrap();
        assert!(out.contains("wrote 300 sites"));

        let metrics = dir.join("metrics.json");
        let metrics_s = metrics.to_str().unwrap();
        let fit_out = run(&argv(&format!(
            "fit --data {data_s} --variant mp --tile 60 --max-evals 30 --start 1.0,0.1,0.5 \
             --workers 2 --metrics {metrics_s}"
        )))
        .unwrap();
        assert!(fit_out.contains("log-likelihood"), "{fit_out}");
        assert!(fit_out.contains("factorizations"), "{fit_out}");
        assert!(fit_out.contains("wrote runtime metrics"), "{fit_out}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"kernels\":["), "{json}");
        assert!(json.contains("\"tasks\":"), "{json}");
        if cfg!(debug_assertions) {
            assert!(json.contains("\"validation\":{"), "{json}");
        }

        let pred_csv = dir.join("pred.csv");
        let pred_out = run(&argv(&format!(
            "predict --data {data_s} --targets {data_s} --theta 1.0,0.1,0.5 --tile 60 \
             --uncertainty --out {}",
            pred_csv.to_str().unwrap()
        )))
        .unwrap();
        assert!(pred_out.contains("MSPE"), "{pred_out}");
        // Predicting the training set itself: MSPE ~ 0 (exact interpolation).
        let ms: f64 = pred_out
            .lines()
            .find(|l| l.contains("MSPE"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(ms < 1e-6, "self-prediction MSPE {ms}");

        let maps_out = run(&argv(&format!(
            "maps --data {data_s} --theta 1.0,0.1,0.5 --tile 60"
        )))
        .unwrap();
        assert!(maps_out.contains("legend"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bayes_command_runs_end_to_end() {
        let dir = std::env::temp_dir().join(format!("xgs-bayes-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("d.csv");
        let data_s = data.to_str().unwrap();
        run(&argv(&format!(
            "simulate --n 150 --params 1.0,0.1,0.5 --seed 8 --out {data_s}"
        )))
        .unwrap();
        let out = run(&argv(&format!(
            "bayes --data {data_s} --start 1.0,0.1,0.5 --iterations 30 --burn-in 10 --tile 50 --variant dense"
        )))
        .unwrap();
        assert!(out.contains("90% CI"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&argv("fit")).is_err()); // missing --data
        assert!(run(&argv("simulate --n 10 --params 1.0 --out /tmp/x.csv")).is_err()); // wrong θ len
                                                                                       // Wrong arity must be a clean error everywhere, not a panic.
        let dir = std::env::temp_dir().join(format!("xgs-arity-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.join("d.csv");
        let ds = d.to_str().unwrap();
        run(&argv(&format!(
            "simulate --n 60 --params 1.0,0.1,0.5 --out {ds}"
        )))
        .unwrap();
        for cmd in [
            format!("predict --data {ds} --targets {ds} --theta 1.0,0.1"),
            format!("maps --data {ds} --theta 1.0"),
            format!("fit --data {ds} --start 1.0,0.1 --max-evals 5"),
            format!("bayes --data {ds} --start 1.0 --iterations 5 --burn-in 1"),
        ] {
            let args =
                Args::parse(&cmd.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap();
            match run(&args) {
                Err(CmdError::Arg(e)) => assert!(e.0.contains("values"), "{e}"),
                other => panic!("expected arity error for '{cmd}', got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        let help = run(&argv("help")).unwrap();
        assert!(help.contains("USAGE"));
    }
}

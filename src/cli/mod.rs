//! Command-line interface of the `exageostat` binary — the high-level
//! front-end role the paper's framework exposes through the R package.

pub mod args;
pub mod commands;
pub mod io;

//! `exageostat` — command-line front-end for the mixed-precision + TLR
//! geostatistics stack. Run `exageostat help` for usage.

use exageostat_rs::cli::args::Args;
use exageostat_rs::cli::commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{}", commands::USAGE);
        std::process::exit(2);
    }
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    match commands::run(&args) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

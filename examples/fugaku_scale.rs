//! Simulated Fugaku-scale runs: the shapes of paper Figs. 10 and 11.
//!
//! Replays the tile-Cholesky DAG of each solver variant against the
//! calibrated A64FX machine model at the paper's node counts, printing a
//! Fig. 10-style table (time-to-solution vs matrix size per variant and
//! correlation strength) and the headline MP+TLR speedup.
//!
//! ```text
//! cargo run --release --example fugaku_scale
//! ```

use exageostat_rs::prelude::*;

fn main() {
    let nb = 800; // the paper's Fig. 7 tile size
    let variants = [
        SolverVariant::DenseF64,
        SolverVariant::MpDense,
        SolverVariant::MpDenseTlr,
    ];

    println!("simulated Matérn 2D space Cholesky on modeled A64FX nodes (tile {nb})\n");
    for corr in [Correlation::Weak, Correlation::Medium, Correlation::Strong] {
        println!("-- {} correlation (a = {}) --", corr.name(), corr.range());
        println!(
            "{:>10} {:>7} | {:>14} {:>14} {:>14} | {:>8}",
            "n", "nodes", "dense-fp64 (s)", "mp-dense (s)", "mp+tlr (s)", "speedup"
        );
        for (n, nodes) in [
            (1_000_000usize, 2048usize),
            (2_000_000, 4096),
            (4_000_000, 8192),
            (9_000_000, 16384),
        ] {
            let mut times = Vec::new();
            let mut fits = Vec::new();
            for v in variants {
                let p = project(&ScaleConfig::new(n, nb, nodes, corr, v));
                times.push(p.makespan);
                fits.push(p.fits_in_memory);
            }
            println!(
                "{:>10} {:>7} | {:>14.1} {:>14.1} {:>14.1} | {:>7.1}x{}",
                n,
                nodes,
                times[0],
                times[1],
                times[2],
                times[0] / times[2],
                if fits[0] {
                    ""
                } else {
                    "  (dense FP64 exceeds node memory: hypothetical)"
                }
            );
        }
        println!();
    }

    println!("-- space-time, strong correlation (paper Fig. 11) --");
    for (n, nodes) in [(4_000_000usize, 4096usize), (10_000_000, 48384)] {
        let d = project(&ScaleConfig::new(
            n,
            nb,
            nodes,
            Correlation::Strong,
            SolverVariant::DenseF64,
        ));
        let t = project(&ScaleConfig::new(
            n,
            nb,
            nodes,
            Correlation::Strong,
            SolverVariant::MpDenseTlr,
        ));
        println!(
            "n = {n:>9}, {nodes:>5} nodes: dense {:.0}s vs MP+TLR {:.0}s -> {:.1}x (footprint {:.0} GB vs {:.0} GB)",
            d.makespan,
            t.makespan,
            d.makespan / t.makespan,
            d.footprint_bytes / 1e9,
            t.footprint_bytes / 1e9
        );
    }
}

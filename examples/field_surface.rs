//! Krige a full field surface (the kind of map in the paper's Fig. 1)
//! with conditional-simulation ensembles for exceedance probabilities.
//!
//! Fits the model on scattered observations, predicts onto a regular grid,
//! and writes `target/field_surface.csv` with the kriged mean, prediction
//! standard deviation, and the ensemble probability that the field exceeds
//! one standard deviation — the risk-map products environmental users
//! derive from geostatistical models.
//!
//! ```text
//! cargo run --release --example field_surface
//! ```

use exageostat_rs::core::conditional_simulation;
use exageostat_rs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Scattered "observations".
    let mut rng = StdRng::seed_from_u64(42);
    let mut obs = jittered_grid(600, &mut rng);
    morton_order(&mut obs);
    let truth = MaternParams::new(1.0, 0.15, 1.5);
    let kernel = Matern::new(truth);
    let z = simulate_field(&kernel, &obs, 17);

    // Factor the training covariance once with the adaptive solver.
    let cfg = TlrConfig::new(Variant::MpDense, 100);
    let model = FlopKernelModel::default();
    let rep = log_likelihood(&kernel, &obs, &z, &cfg, &model, 0).unwrap();

    // Regular 40x40 prediction grid.
    let g = 40usize;
    let grid: Vec<Location> = (0..g * g)
        .map(|i| {
            Location::new(
                (i % g) as f64 / (g - 1) as f64,
                (i / g) as f64 / (g - 1) as f64,
            )
        })
        .collect();

    let pred = krige(&kernel, &obs, &z, &rep.factor, &grid, true);
    let sd: Vec<f64> = pred
        .uncertainty
        .as_ref()
        .unwrap()
        .iter()
        .map(|u| u.sqrt())
        .collect();

    // Exceedance probability P(Z > 1) from a conditional ensemble.
    let n_draws = 30;
    let draws = conditional_simulation(&kernel, &obs, &z, &rep.factor, &grid, n_draws, 99);
    let exceed: Vec<f64> = (0..grid.len())
        .map(|j| draws.iter().filter(|d| d[j] > 1.0).count() as f64 / n_draws as f64)
        .collect();

    // Write the surface.
    let mut csv = String::from("x,y,mean,sd,p_exceed_1\n");
    for (j, l) in grid.iter().enumerate() {
        csv.push_str(&format!(
            "{:.4},{:.4},{:.4},{:.4},{:.3}\n",
            l.x, l.y, pred.mean[j], sd[j], exceed[j]
        ));
    }
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/field_surface.csv", &csv).unwrap();

    // Console summary.
    let mean_sd = sd.iter().sum::<f64>() / sd.len() as f64;
    let frac_hot = exceed.iter().filter(|&&p| p > 0.5).count() as f64 / exceed.len() as f64;
    println!(
        "kriged a {g}x{g} surface from {} observations:\n\
         average prediction sd {mean_sd:.3} (marginal sd 1.0)\n\
         {:.1}% of cells have P(Z > 1) > 0.5\n\
         wrote target/field_surface.csv (x, y, mean, sd, p_exceed_1)",
        obs.len(),
        frac_hot * 100.0
    );
}

//! Inspecting the dynamic runtime: execution traces, load balance, and
//! scheduler policy comparison on a real MP+TLR factorization DAG.
//!
//! Writes a Chrome-Tracing JSON (`target/cholesky_trace.json`, loadable in
//! `chrome://tracing` or Perfetto) and prints the per-kernel time budget —
//! the observability PaRSEC gives the paper's §VII discussions of load
//! imbalance.
//!
//! ```text
//! cargo run --release --example runtime_trace
//! ```

use exageostat_rs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use xgs_cholesky::TiledFactor;
use xgs_runtime::{chrome_trace_json, execute_with_policy, kind_summary, SchedPolicy};

fn build_matrix() -> SymTileMatrix {
    let mut rng = StdRng::seed_from_u64(12);
    let mut locs = jittered_grid(1024, &mut rng);
    for l in &mut locs {
        l.x *= 10.0;
        l.y *= 10.0;
    }
    morton_order(&mut locs);
    let kernel = Matern::new(MaternParams::new(1.0, 0.17, 0.5));
    let model = FlopKernelModel {
        dense_rate: 45.0e9,
        mem_factor: 1.0,
    };
    SymTileMatrix::generate(
        &kernel,
        &locs,
        TlrConfig::new(Variant::MpDenseTlr, 64),
        &model,
    )
}

fn main() {
    // --- traced run --------------------------------------------------------
    let f = Arc::new(TiledFactor::from_matrix(build_matrix()));
    let nt = f.nt();
    let (res, report) = f.factorize_parallel(0);
    res.unwrap();
    println!(
        "factorized NT = {nt} tiles: {} tasks on {} workers in {:.3}s \
         (efficiency {:.0}%, imbalance {:.2})",
        report.tasks,
        report.workers,
        report.wall_seconds,
        report.efficiency() * 100.0,
        report.imbalance()
    );

    // Kernel-kind budget from a traced standalone DAG of the same shape
    // (factorize_parallel runs untraced; the graph-level API exposes
    // tracing directly).
    let mut graph = TaskGraph::new();
    for k in 0..nt {
        let d = |i: usize, j: usize| DataId((i * nt + j) as u64);
        graph.insert("potrf", vec![Access::write(d(k, k))], 3, 0.0, || {
            std::hint::black_box(busy_work(40_000));
        });
        for i in k + 1..nt {
            graph.insert(
                "trsm",
                vec![Access::read(d(k, k)), Access::write(d(i, k))],
                2,
                0.0,
                || {
                    std::hint::black_box(busy_work(60_000));
                },
            );
        }
        for i in k + 1..nt {
            for j in k + 1..=i {
                let kind = if i == j { "syrk" } else { "gemm" };
                graph.insert(
                    kind,
                    vec![
                        Access::read(d(i, k)),
                        Access::read(d(j, k)),
                        Access::write(d(i, j)),
                    ],
                    1,
                    0.0,
                    || {
                        std::hint::black_box(busy_work(80_000));
                    },
                );
            }
        }
    }
    let traced = execute_with_policy(graph, 0, true, SchedPolicy::Priority);
    println!("\nper-kernel budget (synthetic costs):");
    for (kind, count, total) in kind_summary(&traced.trace) {
        println!("  {kind:<6} x{count:<5} {total:>8.3}s total");
    }
    let json = chrome_trace_json(&traced.trace);
    let path = "target/cholesky_trace.json";
    std::fs::write(path, json).expect("write trace");
    println!(
        "wrote Chrome trace to {path} ({} events)",
        traced.trace.len()
    );

    // --- scheduler policy comparison ---------------------------------------
    println!("\nscheduler policies on the same DAG (wall seconds):");
    for policy in [SchedPolicy::Priority, SchedPolicy::Fifo, SchedPolicy::Lifo] {
        let mut g = TaskGraph::new();
        for k in 0..nt {
            let d = |i: usize, j: usize| DataId((i * nt + j) as u64);
            g.insert(
                "potrf",
                vec![Access::write(d(k, k))],
                (nt - k) as i64 * 4 + 3,
                0.0,
                || {
                    std::hint::black_box(busy_work(40_000));
                },
            );
            for i in k + 1..nt {
                g.insert(
                    "trsm",
                    vec![Access::read(d(k, k)), Access::write(d(i, k))],
                    (nt - k) as i64 * 4 + 2,
                    0.0,
                    || {
                        std::hint::black_box(busy_work(60_000));
                    },
                );
            }
            for i in k + 1..nt {
                for j in k + 1..=i {
                    let kind = if i == j { "syrk" } else { "gemm" };
                    g.insert(
                        kind,
                        vec![
                            Access::read(d(i, k)),
                            Access::read(d(j, k)),
                            Access::write(d(i, j)),
                        ],
                        (nt - k) as i64 * 4,
                        0.0,
                        || {
                            std::hint::black_box(busy_work(80_000));
                        },
                    );
                }
            }
        }
        let r = execute_with_policy(g, 0, false, policy);
        println!(
            "  {policy:?}: {:.3}s (efficiency {:.0}%)",
            r.wall_seconds,
            r.efficiency() * 100.0
        );
    }
}

/// Deterministic spin work (stands in for a kernel of known cost).
fn busy_work(iters: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

//! Quickstart: simulate a spatial dataset, fit the Matérn model with the
//! mixed-precision + TLR solver, and krige unobserved locations.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use exageostat_rs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. A synthetic "monitoring network" on the unit square. ---------
    let n = 900;
    let mut rng = StdRng::seed_from_u64(2024);
    let mut locs = jittered_grid(n, &mut rng);
    morton_order(&mut locs); // locality ordering: makes far tiles low-rank

    // Ground truth: medium spatial correlation, fairly rough field.
    let truth = MaternParams::new(1.0, 0.1, 0.5);
    let z = simulate_field(&Matern::new(truth), &locs, 7);
    println!("simulated {n} observations under Matérn {truth:?}");

    // --- 2. Maximum likelihood with the adaptive solver. ------------------
    let cfg = TlrConfig::new(Variant::MpDenseTlr, 100);
    let model = FlopKernelModel::default();
    let fit_opts = FitOptions::default();
    let result = fit(
        ModelFamily::MaternSpace,
        &locs[..800],
        &z[..800],
        &cfg,
        &model,
        &fit_opts,
    );
    println!(
        "estimated θ = (σ²={:.3}, a={:.3}, ν={:.3}), log-likelihood {:.2} after {} evaluations",
        result.theta[0], result.theta[1], result.theta[2], result.llh, result.evals
    );

    // --- 3. Prediction at the 100 held-out sites. --------------------------
    let kernel = ModelFamily::MaternSpace.kernel(&result.theta);
    let report = log_likelihood(kernel.as_ref(), &locs[..800], &z[..800], &cfg, &model, 0)
        .expect("estimate is SPD");
    let pred = krige(
        kernel.as_ref(),
        &locs[..800],
        &z[..800],
        &report.factor,
        &locs[800..],
        true,
    );
    let err = mspe(&pred.mean, &z[800..]);
    let avg_unc = pred.uncertainty.as_ref().unwrap().iter().sum::<f64>() / pred.mean.len() as f64;
    println!("kriging MSPE on 100 held-out sites: {err:.4} (avg predicted variance {avg_unc:.4})");
    println!(
        "matrix footprint under MP+TLR formats: {:.2} MB (dense FP64 tiles: {:.2} MB)",
        report.footprint_bytes as f64 / 1e6,
        report.dense_footprint_bytes as f64 / 1e6
    );
}

//! Bayesian uncertainty quantification over the Matérn parameters —
//! the extension the paper's §VIII sketches ("the Bayesian UQ application
//! and its solution can follow naturally upon our work").
//!
//! Every MCMC step evaluates the Gaussian log-likelihood through the same
//! adaptive MP+TLR tile Cholesky as the MLE, so the posterior inherits the
//! solver's approximation guarantees.
//!
//! ```text
//! cargo run --release --example uq_bayesian
//! ```

use exageostat_rs::core::bayes::{posterior_sample, McmcOptions};
use exageostat_rs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 400;
    let mut rng = StdRng::seed_from_u64(99);
    let mut locs = jittered_grid(n, &mut rng);
    morton_order(&mut locs);
    let truth = MaternParams::new(1.0, 0.1, 0.5);
    let z = simulate_field(&Matern::new(truth), &locs, 5);
    println!("simulated {n} sites under Matérn {truth:?}");

    // 1. MLE as the chain start.
    let cfg = TlrConfig::new(Variant::MpDense, 80);
    let model = FlopKernelModel::default();
    let mle = fit(
        ModelFamily::MaternSpace,
        &locs,
        &z,
        &cfg,
        &model,
        &FitOptions {
            start: Some(vec![1.0, 0.1, 0.5]),
            ..Default::default()
        },
    );
    println!(
        "MLE: θ̂ = ({:.3}, {:.3}, {:.3}), llh {:.2}",
        mle.theta[0], mle.theta[1], mle.theta[2], mle.llh
    );

    // 2. Posterior sampling around it.
    let opts = McmcOptions {
        iterations: 400,
        burn_in: 100,
        workers: 0,
        ..Default::default()
    };
    let post = posterior_sample(
        ModelFamily::MaternSpace,
        &locs,
        &z,
        &cfg,
        &model,
        &mle.theta,
        &opts,
    )
    .expect("chain must initialize at the MLE");

    println!(
        "\nposterior from {} draws (acceptance {:.0}%):",
        post.samples.len(),
        post.acceptance * 100.0
    );
    for (i, name) in ["variance", "range", "smoothness"].iter().enumerate() {
        let (lo, hi) = post.ci90[i];
        println!(
            "  {name:<11} mean {:.3}   90% CI [{lo:.3}, {hi:.3}]   truth {:.3} {}",
            post.mean[i],
            [truth.sigma2, truth.range, truth.smoothness][i],
            if (lo..=hi).contains(&[truth.sigma2, truth.range, truth.smoothness][i]) {
                "(covered)"
            } else {
                "(missed)"
            }
        );
    }
}

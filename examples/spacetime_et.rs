//! Evapotranspiration space–time scenario (paper Table II, scaled down).
//!
//! The paper models 21 years of NASA GES DISC evapotranspiration residuals
//! over Central Asia: ~83K spatial sites × 12 monthly slots, fitted with
//! the non-separable Gneiting covariance (6 parameters). Its Table II
//! estimate finds strong spatial correlation and a medium space–time
//! interaction (β ≈ 0.186). We simulate a field from those estimates and
//! fit the six-parameter model with the dense and adaptive solvers.
//!
//! ```text
//! cargo run --release --example spacetime_et
//! ```

use exageostat_rs::core::mle::FitOptimizer;
use exageostat_rs::core::NelderMeadOptions;
use exageostat_rs::prelude::*;

fn main() {
    // Paper Table II estimates (α mapped into Gneiting's (0,1] exponent).
    let truth = vec![1.0087, 0.38, 0.3164, 0.5, 0.9, 0.186];

    let cfg = PipelineConfig {
        family: ModelFamily::GneitingSpaceTime,
        true_params: truth.clone(),
        n_train: 720, // 60 sites x 12 months
        n_test: 72,
        time_slots: 12,
        domain_size: 4.0,
        tile_size: 90,
        variants: vec![Variant::DenseF64, Variant::MpDense, Variant::MpDenseTlr],
        fit: FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                max_evals: 100,
                f_tol: 1e-5,
                initial_step: 0.3,
            }),
            start: Some(truth.clone()),
            workers: 0,
            shard: None,
        },
        seed: 2021, // the paper's target year
    };

    println!(
        "ET space-time scenario: {} training / {} test points over {} time slots",
        cfg.n_train, cfg.n_test, cfg.time_slots
    );
    println!("non-separable Gneiting model, truth θ = {truth:?}\n");

    // Demo-size tiles: the calibrated A64FX model's TLR crossover (~nb/13.5)
    // would keep every small tile dense, which is correct for the hardware
    // but hides the TLR machinery at reduced scale; drop the memory-bound
    // penalty so the structure decision engages (paper-scale studies use the
    // calibrated model in xgs-perfmodel).
    let model = FlopKernelModel {
        dense_rate: 45.0e9,
        mem_factor: 1.0,
    };
    let report = run_pipeline(&cfg, &model);
    println!("{}", report.render(ModelFamily::GneitingSpaceTime));

    // The paper's third observation: β > 0 (non-separability) matters.
    for row in &report.rows {
        let beta = row.fit.theta[5];
        println!(
            "{:<14} estimated space-time interaction β = {beta:.3} (truth {:.3})",
            row.variant.name(),
            truth[5]
        );
    }
}

//! Per-tile precision/structure decision heat-maps (paper Fig. 9).
//!
//! Generates real covariance matrices at weak and strong correlation,
//! applies both runtime decisions, and renders the resulting tile-format
//! maps with their memory-footprint reductions.
//!
//! ```text
//! cargo run --release --example decision_maps
//! ```

use exageostat_rs::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 4096;
    let nb = 64;
    let mut rng = StdRng::seed_from_u64(9);
    let mut locs = jittered_grid(n, &mut rng);
    morton_order(&mut locs);
    // Demo tiles are 64 wide (the paper uses 2700, where the calibrated
    // A64FX model yields the Fig. 5 crossover at rank ~200 = nb/13.5). At
    // nb = 64 that crossover is rank ~5, which no real covariance tile
    // beats, so for the illustration we drop the TLR memory-bound penalty;
    // paper-scale maps use the calibrated model (see the fig9 bench).
    let model = FlopKernelModel {
        dense_rate: 45.0e9,
        mem_factor: 1.0,
    };

    for (label, range) in [("weak (a=0.01)", 0.01), ("strong (a=0.3)", 0.3)] {
        let kernel = Matern::new(MaternParams::new(1.0, range, 0.5));
        for variant in [Variant::MpDense, Variant::MpDenseTlr] {
            let m = SymTileMatrix::generate(&kernel, &locs, TlrConfig::new(variant, nb), &model);
            let map = decision_heatmap(&m);
            println!(
                "== {label} correlation, {} (band_size_dense = {}) ==",
                variant.name(),
                m.band_size_dense
            );
            println!("{}", map.render());
        }
    }
}

//! Soil-moisture scenario (paper Table I, scaled down).
//!
//! The paper trains on 1M locations from the Mississippi-basin soil
//! moisture dataset and finds medium spatial correlation with a rough
//! random field (θ ≈ (0.67, 0.17, 0.44)). We simulate a field with exactly
//! those estimated parameters (the dataset itself is not redistributable),
//! then run all three solver variants through the full
//! modeling → prediction pipeline and print the Table-I-shaped comparison:
//! the approximate variants should recover nearly identical parameters,
//! log-likelihood, and MSPE.
//!
//! ```text
//! cargo run --release --example soil_moisture
//! ```

use exageostat_rs::core::mle::FitOptimizer;
use exageostat_rs::core::NelderMeadOptions;
use exageostat_rs::prelude::*;

fn main() {
    // Paper Table I estimates, used as our simulation ground truth.
    let truth = vec![0.67, 0.17, 0.44];

    let cfg = PipelineConfig {
        family: ModelFamily::MaternSpace,
        true_params: truth.clone(),
        n_train: 1000,
        n_test: 100,
        time_slots: 1,
        // ~80 correlation ranges across the domain — the Mississippi basin
        // spans ~16-20 degrees with the paper's estimated range of 0.17, so
        // this matches the real dataset's domain-to-range regime and lets
        // the adaptive precision/structure decisions engage at demo scale.
        domain_size: 14.0,
        tile_size: 100,
        variants: vec![Variant::DenseF64, Variant::MpDense, Variant::MpDenseTlr],
        fit: FitOptions {
            optimizer: FitOptimizer::NelderMead(NelderMeadOptions {
                max_evals: 80,
                f_tol: 1e-5,
                initial_step: 0.35,
            }),
            start: Some(vec![1.0, 0.1, 0.5]),
            workers: 0, // all cores through the task runtime
            shard: None,
        },
        seed: 20040101, // the paper's dataset date: January 1st, 2004
    };

    println!(
        "soil-moisture scenario: {} training / {} test sites, truth θ = {:?}",
        cfg.n_train, cfg.n_test, truth
    );
    println!("fitting 3 variants (dense FP64, MP dense, MP+dense/TLR)...\n");

    // Demo-size tiles: the calibrated A64FX model's TLR crossover (~nb/13.5)
    // would keep every small tile dense, which is correct for the hardware
    // but hides the TLR machinery at reduced scale; drop the memory-bound
    // penalty so the structure decision engages (paper-scale studies use the
    // calibrated model in xgs-perfmodel).
    let model = FlopKernelModel {
        dense_rate: 45.0e9,
        mem_factor: 1.0,
    };
    let report = xgs_core::run_pipeline(&cfg, &model);
    println!("{}", report.render(ModelFamily::MaternSpace));

    let base = &report.rows[0];
    for row in &report.rows[1..] {
        let dl = (row.fit.llh - base.fit.llh).abs();
        let dm = (row.mspe - base.mspe).abs() / base.mspe;
        println!(
            "{:<14} Δllh = {dl:.3}, ΔMSPE = {:.2}%, footprint {:.1}% of dense",
            row.variant.name(),
            dm * 100.0,
            100.0 * row.footprint_bytes as f64 / base.footprint_bytes as f64
        );
    }
}

//! Offline stand-in for `criterion`.
//!
//! A minimal benchmark harness exposing the criterion API surface the
//! workspace's benches use (`criterion_group!`/`criterion_main!`, groups,
//! `iter`, `iter_batched`, throughput annotation). Each benchmark is
//! warmed up once, then timed over enough iterations to fill a short
//! measurement window; mean time (and derived throughput) is printed.
//! No statistics, plots, or baselines — this exists so `cargo bench`
//! works in a registry-less container.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim runs one setup per
/// iteration regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Total measured time and iteration count of the last `iter*` call.
    elapsed: Duration,
    iterations: u64,
    measurement_window: Duration,
}

impl Bencher {
    fn new(measurement_window: Duration) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
            measurement_window,
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warmup
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement_window {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iterations = iters.max(1);
    }

    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warmup
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let window_start = Instant::now();
        while window_start.elapsed() < self.measurement_window {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.elapsed = measured;
        self.iterations = iters.max(1);
    }
}

pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let ms = std::env::var("XGS_BENCH_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            measurement_window: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(&name.to_string(), self.measurement_window, None, f);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Criterion tunes its statistics with this; the shim has none.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(
            &format!("  {id}"),
            self.criterion.measurement_window,
            self.throughput,
            f,
        );
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(
            &format!("  {}", id.id),
            self.criterion.measurement_window,
            self.throughput,
            |b| f(b, input),
        );
    }

    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    window: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher::new(window);
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iterations as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:.3} Gelem/s", n as f64 / per_iter / 1e9)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:.3} GB/s", n as f64 / per_iter / 1e9)
        }
        _ => String::new(),
    };
    println!(
        "{label}: {} ({} iters){rate}",
        format_time(per_iter),
        b.iterations
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement_window: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            });
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        });
        group.finish();
        assert!(ran > 0);
    }
}

//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` API shape the workspace uses — `lock()`
//! without a `Result`, `Condvar::wait(&mut guard)` — with poisoning
//! swallowed (a poisoned lock yields its inner guard, matching
//! parking_lot's "no poisoning" semantics).

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and sleep until notified;
    /// re-acquires before returning (parking_lot's `&mut guard` shape).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard active");
        guard.inner = Some(
            self.0
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}

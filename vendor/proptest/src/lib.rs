//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: range
//! strategies, `collection::vec`, `prop_map`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Cases are generated from a
//! deterministic per-test seed (derived from the test name, overridable
//! with `PROPTEST_SEED`); there is no shrinking — a failure reports the
//! case index and the failed assertion so the case can be replayed by
//! rerunning the test.

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform, SeedableRng};
use std::ops::Range;

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Half-open ranges of samplable scalars are strategies.
impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    /// `count` values drawn independently from `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.count)
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }
}

/// Deterministic RNG for one test, seeded from the test name (FNV-1a) or
/// the `PROPTEST_SEED` environment variable when set.
pub fn new_test_rng(test_name: &str) -> StdRng {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            return StdRng::seed_from_u64(seed);
        }
    }
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        let __prop_ok: bool = $cond;
        if !__prop_ok {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_ok: bool = $cond;
        if !__prop_ok {
            return Err(format!(
                "assertion failed at {}:{}: {}: {}",
                file!(),
                line!(),
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return Err(format!(
                "assertion failed at {}:{}: {} == {} ({:?} vs {:?})",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies,
/// run for `ProptestConfig::cases` deterministic cases each.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body Ok(()) })();
                    if let Err(msg) = __outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            __case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_test_name() {
        let mut a = crate::new_test_rng("x");
        let mut b = crate::new_test_rng("x");
        let s = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn vec_strategy_produces_exact_count() {
        let mut rng = crate::new_test_rng("vec");
        let v = crate::collection::vec(-1.0f64..1.0, 12).generate(&mut rng);
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_cases_and_asserts(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x), "x = {}", x);
            prop_assert_eq!(n.min(20), n);
        }

        #[test]
        fn prop_map_composes(v in crate::collection::vec(0.0f64..1.0, 4).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 4);
        }
    }

    #[test]
    #[should_panic(expected = "case 1/")]
    // The inner #[test] is never collected by the harness — we call the
    // generated fn by hand to observe its panic message.
    #[allow(unnameable_test_items)]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0);
            }
        }
        always_fails();
    }
}

//! Offline stand-in for the `polling` crate: a readiness poller over raw
//! Linux `epoll`, with an `eventfd` wake channel behind [`Poller::notify`].
//!
//! Exposes the subset of the upstream API the workspace uses — `Poller`
//! (`new`/`add`/`modify`/`delete`/`wait`/`notify`), `Event`, `Events` —
//! with one deliberate semantic divergence: registrations are
//! **level-triggered and persistent** (upstream defaults to oneshot, so
//! upstream callers re-arm after every event; ours keep firing while the
//! fd stays ready and never need re-arming). Both the xgs-server reactor
//! and the loadgen open-loop client are written against level-triggered
//! semantics.
//!
//! No libc crate: std already links the platform C library, so the
//! handful of syscall wrappers are declared directly. Linux-only, which
//! is the only platform this workspace targets (see vendor/README.md).

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

use std::os::raw::{c_int, c_uint, c_void};

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// packs it so 32- and 64-bit layouts agree); on other architectures the
/// natural C layout already matches because there is no trailing padding
/// the kernel cares about — but this shim only targets Linux/x86-64
/// anyway (vendor/README.md).
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Interest in (or readiness of) a poll source, identified by `key`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

impl Event {
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    pub fn writable(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    pub fn none(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }

    fn to_mask(self) -> u32 {
        let mut mask = EPOLLRDHUP;
        if self.readable {
            mask |= EPOLLIN;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// Buffer of events filled by [`Poller::wait`].
pub struct Events {
    raw: Vec<EpollEvent>,
    list: Vec<Event>,
}

impl Events {
    /// Capacity of the raw kernel buffer per `wait` call. Level-triggered
    /// registration means anything beyond this is simply re-reported by
    /// the next `wait`, so the cap bounds memory, not correctness.
    const CAPACITY: usize = 1024;

    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Events {
            raw: vec![EpollEvent { events: 0, data: 0 }; Self::CAPACITY],
            list: Vec::with_capacity(Self::CAPACITY),
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.list.iter().copied()
    }

    pub fn len(&self) -> usize {
        self.list.len()
    }

    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    pub fn clear(&mut self) {
        self.list.clear();
    }
}

/// Key reserved for the internal eventfd notifier; user registrations
/// with this key are rejected.
pub const NOTIFY_KEY: usize = usize::MAX;

/// An epoll instance plus an eventfd wake channel. `wait` never reports
/// the notifier itself — a `notify` from another thread just makes the
/// current (or next) `wait` return early.
pub struct Poller {
    epfd: RawFd,
    wakefd: RawFd,
}

// SAFETY: epoll and eventfd file descriptors are thread-safe kernel
// objects; every method takes `&self` and performs a single syscall.
// xgs-lint: allow(no-unjustified-unsafe): raw fds are plain ints with no aliased user-space state
unsafe impl Send for Poller {}
// SAFETY: same argument as Send — every method is one syscall on `&self`,
// and the kernel serializes epoll/eventfd operations internally.
// xgs-lint: allow(no-unjustified-unsafe): raw fds are plain ints with no aliased user-space state
unsafe impl Sync for Poller {}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; the fd it returns is
        // owned by the Poller under construction.
        // xgs-lint: allow(no-unjustified-unsafe): no preconditions, result checked on the next line
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: eventfd takes no pointers; the fd it returns is owned
        // by the Poller under construction.
        // xgs-lint: allow(no-unjustified-unsafe): no preconditions, result checked on the next line
        let wakefd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if wakefd < 0 {
            let err = io::Error::last_os_error();
            // SAFETY: epfd came from epoll_create1 above and is closed
            // exactly once, on this early-exit path.
            // xgs-lint: allow(no-unjustified-unsafe): owned fd xgs-lint: allow(syscall-ret-checked): best-effort cleanup; the eventfd error is what this path reports
            unsafe { close(epfd) };
            return Err(err);
        }
        let poller = Poller { epfd, wakefd };
        let mut ev = EpollEvent {
            events: EPOLLIN,
            data: NOTIFY_KEY as u64,
        };
        // SAFETY: `ev` is a live stack value for the duration of the call;
        // both fds are owned by `poller`.
        // xgs-lint: allow(no-unjustified-unsafe): pointer outlives the syscall, result checked below
        let rc = unsafe { epoll_ctl(poller.epfd, EPOLL_CTL_ADD, poller.wakefd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(poller)
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
        if let Some(ev) = interest {
            if ev.key == NOTIFY_KEY {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "key usize::MAX is reserved for the notifier",
                ));
            }
        }
        let mut raw = EpollEvent {
            events: interest.map_or(0, Event::to_mask),
            data: interest.map_or(0, |ev| ev.key as u64),
        };
        // SAFETY: `raw` is a live stack value for the duration of the call.
        // xgs-lint: allow(no-unjustified-unsafe): pointer outlives the syscall, result checked below
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut raw) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Register `source` with level-triggered interest. The registration
    /// persists until `delete` — no re-arming after events.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(interest))
    }

    /// Replace the interest set of an already-registered `source`.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(interest))
    }

    /// Remove `source` from the poller.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Block until at least one registered source is ready, `notify` is
    /// called, or `timeout` elapses (`None` blocks indefinitely). Returns
    /// the number of events delivered into `events`; a wake via `notify`
    /// or an interrupted syscall can return `Ok(0)`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a nonzero timeout never becomes a busy-spin 0.
            Some(d) => d
                .as_millis()
                .max(u128::from(!d.is_zero()))
                .min(c_int::MAX as u128) as c_int,
        };
        // SAFETY: `events.raw` stays alive and unmoved across the blocking
        // call (exclusive borrow), and its length bounds the kernel write.
        // xgs-lint: allow(no-unjustified-unsafe): buffer outlives the syscall, result checked below
        let n = unsafe {
            epoll_wait(
                self.epfd,
                events.raw.as_mut_ptr(),
                events.raw.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for raw in &events.raw[..n as usize] {
            let mask = raw.events;
            let key = raw.data as usize;
            if key == NOTIFY_KEY {
                // Drain the eventfd counter so the notifier goes quiet
                // until the next notify(); never reported to the caller.
                let mut buf = [0u8; 8];
                // SAFETY: `buf` is 8 bytes on this stack frame, exactly
                // the length passed to the kernel.
                // xgs-lint: allow(no-unjustified-unsafe): fixed-size stack buffer matches the read length
                let got = unsafe { read(self.wakefd, buf.as_mut_ptr().cast::<c_void>(), 8) };
                // A failed or short drain only means the next wait() wakes
                // spuriously once more, which the protocol tolerates; make
                // the anomaly loud in debug builds all the same.
                debug_assert!(got == 8 || got < 0, "eventfd drain returned {got}");
                continue;
            }
            let err = mask & (EPOLLERR | EPOLLHUP) != 0;
            events.list.push(Event {
                key,
                // Errors/hangups surface as readable+writable so callers
                // discover them from the failing read()/write().
                readable: mask & (EPOLLIN | EPOLLRDHUP) != 0 || err,
                writable: mask & EPOLLOUT != 0 || err,
            });
        }
        Ok(events.list.len())
    }

    /// Wake a concurrent (or the next) `wait` call. Safe from any thread.
    pub fn notify(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: `one` is a live 8-byte stack value, exactly the length
        // passed to the kernel.
        // xgs-lint: allow(no-unjustified-unsafe): fixed-size stack value matches the write length, result checked below
        let rc = unsafe { write(self.wakefd, (&one as *const u64).cast::<c_void>(), 8) };
        // EAGAIN means the counter is already saturated — the wake is
        // pending, which is all notify promises.
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: both fds are owned by this Poller and closed exactly
        // once, here.
        // xgs-lint: allow(no-unjustified-unsafe): owned fds, single close each
        unsafe {
            // xgs-lint: allow(syscall-ret-checked): Drop has no error channel and the kernel frees the fd regardless
            close(self.wakefd);
            close(self.epfd); // xgs-lint: allow(syscall-ret-checked): same as above — best-effort close in Drop
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn readable_event_fires_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();
        let mut events = Events::new();

        // Nothing readable yet: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);

        // Level-triggered: unread bytes keep the event firing.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 16];
        let got = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping");
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn modify_to_writable_and_delete() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let _server = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&client, Event::none(3)).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "no interest registered, no events");

        poller.modify(&client, Event::writable(3)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.writable && ev.key == 3);

        poller.delete(&client).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deleted source must not report");
    }

    #[test]
    fn notify_wakes_a_blocking_wait_without_an_event() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "notify is not an event");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "wait should have been woken early"
        );
        t.join().unwrap();

        // A queued notify (before wait) also wakes immediately.
        poller.notify().unwrap();
        let t0 = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn reserved_key_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        assert!(poller.add(&listener, Event::readable(NOTIFY_KEY)).is_err());
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! This container builds with no registry access, so the workspace vendors
//! the narrow API surface it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and uniform sampling through
//! [`RngExt::random_range`]. The generator is xoshiro256++ (Blackman &
//! Vigna) seeded with SplitMix64 — deterministic across runs and platforms,
//! which the bitwise parallel-vs-sequential solver tests rely on.
//!
//! Not a cryptographic RNG, and the streams differ from upstream `rand`;
//! everything in-tree derives its expectations from seeds at build time, so
//! only internal determinism matters.

use std::ops::Range;

/// Core RNG interface: a source of uniform 64-bit words.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sampling range");
                let u = rng.next_f64() as $t;
                range.start + u * (range.end - range.start)
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty sampling range");
                let span = range.end.abs_diff(range.start) as u128;
                // Lemire multiply-shift map of a 64-bit word onto the span;
                // start + v < end, so the wrapping add never actually wraps.
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                range.start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_int!(i32, i64, isize, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`Rng`]
/// (mirrors rand 0.9+'s `Rng::random_range` naming).
pub trait RngExt: Rng {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random(&mut self) -> f64 {
        self.next_f64()
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from integer seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, as the
            // xoshiro authors recommend (never all-zero).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut lo_seen, mut hi_seen) = (f64::MAX, f64::MIN);
        for _ in 0..10_000 {
            let x = rng.random_range(-0.4..0.4);
            assert!((-0.4..0.4).contains(&x));
            lo_seen = lo_seen.min(x);
            hi_seen = hi_seen.max(x);
        }
        assert!(
            lo_seen < -0.35 && hi_seen > 0.35,
            "poor coverage [{lo_seen}, {hi_seen}]"
        );
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // Negative-to-positive span.
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

//! Offline stand-in for `num_cpus`, backed by
//! [`std::thread::available_parallelism`].

/// Logical CPUs available to this process (at least 1).
pub fn get() -> usize {
    // xgs-lint: allow(no-raw-parallelism-probe): this shim is the sanctioned probe the rule funnels callers toward
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical core count is not exposed by std; report the logical count,
/// which is what the workspace's worker-pool sizing wants anyway.
pub fn get_physical() -> usize {
    get()
}

#[cfg(test)]
mod tests {
    #[test]
    fn at_least_one() {
        assert!(super::get() >= 1);
        assert!(super::get_physical() >= 1);
    }
}

//! Offline stand-in for `rayon`.
//!
//! The `par_iter`/`par_chunks_mut` entry points return plain std
//! iterators, so downstream adaptor chains (`map`, `enumerate`,
//! `for_each`, `collect`) compile unchanged but execute sequentially.
//! This container is single-core (`available_parallelism() == 1`), so the
//! fallback costs nothing here; on multi-core hosts swap in real rayon or
//! upgrade this shim to scoped threads (tracked in ROADMAP.md).

pub mod prelude {
    pub use super::{IntoParallelRefIterator, ParallelSliceMut};
}

/// `par_iter()` on slices and anything derefing to one (e.g. `Vec`).
pub trait IntoParallelRefIterator<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect() {
        let v = [1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut data = vec![0usize; 6];
        data.par_chunks_mut(2).enumerate().for_each(|(j, chunk)| {
            for c in chunk {
                *c = j;
            }
        });
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);
    }
}

//! Offline stand-in for `rayon`, backed by a **real work-stealing thread
//! pool** — not a sequential façade.
//!
//! The `par_iter`/`par_chunks_mut` entry points fan work across a lazily
//! initialized global pool of `std::thread` workers (one per logical CPU,
//! the same count `num_cpus::get()` reports to the rest of the workspace;
//! `RAYON_NUM_THREADS` overrides it, exactly like upstream). The pool uses
//! the mutex'd ready-queue pattern proven in `xgs-runtime::exec`: one
//! `Mutex<VecDeque>` deque per worker plus a shared injector; an idle
//! worker pops its own deque LIFO, then the injector, then *steals* FIFO
//! from a sibling's deque.
//!
//! Scheduling model: every parallel call builds one [`BatchCore`] — a
//! shared chunk counter over the work items — and injects *tickets* into
//! the pool. A ticket is an invitation to claim chunks from the counter
//! until it runs dry; the calling thread claims chunks itself while it
//! waits, so completion **never depends on the pool picking tickets up**.
//! That property makes a 1-thread pool, nested `par_iter` inside a pool
//! worker, and a fully busy pool all deadlock-free by construction, and it
//! is what makes the lifetime erasure below sound (see `run_batch`).
//!
//! Guarantees relied on throughout the workspace:
//!
//! * **Order preservation** — `collect` places result `i` at index `i`;
//!   `par_chunks_mut(k).enumerate()` hands chunk `j` its true index. Output
//!   is bitwise identical for every pool size, including 1.
//! * **Panic propagation** — a panicking closure poisons the batch
//!   (remaining chunks are claimed but skipped), the first payload is
//!   rethrown on the calling thread, and the pool stays usable.
//! * **Determinism** — the pool never reorders *results*, only execution.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod prelude {
    pub use super::{IntoParallelRefIterator, ParallelSliceMut};
}

// ------------------------------------------------------------ event hook

/// Synchronization edges of one parallel batch, exposed so an external
/// checker (the runtime's vector-clock race detector) can mirror the
/// pool's happens-before graph without the pool depending on it.
///
/// The emission points bracket every real edge: the caller *sends* the
/// batch before any ticket is visible (`InjectSend`), a worker *observes*
/// it when it steals a ticket (`TicketSteal`) or claims a chunk
/// (`ChunkStart`), publishes its chunk's effects (`ChunkDone`, emitted
/// just before the `Release` increment of the done counter), and the
/// caller *joins* all of them after its final `Acquire` load
/// (`BatchJoin`).
#[derive(Clone, Copy, Debug)]
pub enum PoolEvent {
    /// Caller is about to make batch tickets visible to the pool.
    InjectSend { batch: u64 },
    /// A worker stole a ticket of this batch from a sibling deque.
    TicketSteal { batch: u64 },
    /// The current thread claimed chunk `chunk` and is about to run it.
    ChunkStart { batch: u64, chunk: u64 },
    /// The current thread finished chunk `chunk`; emitted before the
    /// `Release` store that publishes it.
    ChunkDone { batch: u64, chunk: u64 },
    /// The caller observed the whole batch finished (after its `Acquire`
    /// load); `chunks` is the batch's total chunk count.
    BatchJoin { batch: u64, chunks: u64 },
}

static POOL_HOOK: OnceLock<fn(&PoolEvent)> = OnceLock::new();

/// Install the process-wide pool event hook. First caller wins; returns
/// whether this call installed it. The hook runs on pool workers and
/// callers alike and must not call back into the pool.
pub fn set_pool_hook(hook: fn(&PoolEvent)) -> bool {
    POOL_HOOK.set(hook).is_ok()
}

#[inline]
fn emit(ev: PoolEvent) {
    if let Some(hook) = POOL_HOOK.get() {
        hook(&ev);
    }
}

// ------------------------------------------------------------------ pool

/// Cumulative counters of one pool (monotone; diff two snapshots to get a
/// per-run delta). `jobs` counts chunks executed by pool workers,
/// `inline_jobs` chunks the calling thread claimed while waiting, `steals`
/// deque-to-deque ticket thefts, `parks` worker sleeps on an empty pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub threads: usize,
    pub jobs: u64,
    pub inline_jobs: u64,
    pub steals: u64,
    pub parks: u64,
}

impl PoolStats {
    /// Counter delta since `earlier` (thread count carries over).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            threads: self.threads,
            jobs: self.jobs.saturating_sub(earlier.jobs),
            inline_jobs: self.inline_jobs.saturating_sub(earlier.inline_jobs),
            steals: self.steals.saturating_sub(earlier.steals),
            parks: self.parks.saturating_sub(earlier.parks),
        }
    }
}

/// One parallel call: a chunk counter shared by the caller and however
/// many pool workers pick its tickets up.
struct BatchCore {
    /// Process-unique batch id, keying this batch's [`PoolEvent`]s.
    id: u64,
    /// The work, one call per chunk index. Lifetime-erased by `run_batch`,
    /// which guarantees no dereference can happen after it returns: every
    /// use is preceded by a successful claim (`next < total`), and
    /// `run_batch` only returns once `done == total`, after which every
    /// claim fails.
    run: &'static (dyn Fn(usize) + Sync),
    total: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    /// Set on the first panic: later chunks are claimed-and-skipped so the
    /// batch still completes (poisoned, never deadlocked).
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

impl BatchCore {
    fn new(run: &'static (dyn Fn(usize) + Sync), total: usize) -> BatchCore {
        static BATCH_IDS: AtomicU64 = AtomicU64::new(0);
        BatchCore {
            id: BATCH_IDS.fetch_add(1, Ordering::Relaxed),
            run,
            total,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        }
    }

    /// Claim and run chunks until the counter is exhausted. Returns how
    /// many chunks this thread ran.
    fn work(&self) -> u64 {
        let mut ran = 0u64;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return ran;
            }
            emit(PoolEvent::ChunkStart {
                batch: self.id,
                chunk: i as u64,
            });
            if !self.poisoned.load(Ordering::Relaxed) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.run)(i))) {
                    self.poisoned.store(true, Ordering::Relaxed);
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            ran += 1;
            emit(PoolEvent::ChunkDone {
                batch: self.id,
                chunk: i as u64,
            });
            // Release pairs with the caller's Acquire when it observes the
            // batch finished: chunk writes happen-before result reads.
            if self.done.fetch_add(1, Ordering::Release) + 1 == self.total {
                let mut f = self.finished.lock().unwrap_or_else(|e| e.into_inner());
                *f = true;
                self.finished_cv.notify_all();
            }
        }
    }
}

/// A ticket in a worker deque: run chunks of this batch until dry.
type Job = Arc<BatchCore>;

struct Shared {
    /// Per-worker deques plus the shared injector — the same mutex'd
    /// ready-queue shape as `xgs-runtime::exec`, split per worker so
    /// stealing is observable and contention is local.
    deques: Vec<Mutex<VecDeque<Job>>>,
    injector: Mutex<VecDeque<Job>>,
    /// Sleep coordination: workers re-scan all queues while holding this
    /// lock before waiting, and pushers bump-and-notify under it, so a
    /// push can never slip between a worker's last scan and its sleep.
    idle: Mutex<()>,
    available: Condvar,
    shutdown: AtomicBool,
    next_deque: AtomicUsize,
    jobs: AtomicU64,
    inline_jobs: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
}

/// A pool of worker threads. The process-global instance lives forever;
/// explicitly built pools ([`ThreadPool`]) join their workers on drop.
pub struct Registry {
    threads: usize,
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Registry {
    fn new(threads: usize) -> Arc<Registry> {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Mutex::new(()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_deque: AtomicUsize::new(0),
            jobs: AtomicU64::new(0),
            inline_jobs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        });
        let registry = Arc::new(Registry {
            threads,
            shared: Arc::clone(&shared),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let reg = Arc::clone(&registry);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rayon-worker-{w}"))
                    .spawn(move || worker_loop(reg, w))
                    .expect("spawn pool worker"),
            );
        }
        *registry.handles.lock().unwrap_or_else(|e| e.into_inner()) = handles;
        registry
    }

    /// Number of worker threads (≥ 1).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            inline_jobs: self.shared.inline_jobs.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
        }
    }

    /// Spread `tickets` clones of the batch across worker deques (rotating
    /// start, one per deque) and wake everyone.
    fn inject(&self, core: &Job, tickets: usize) {
        if tickets == 0 {
            return;
        }
        let start = self.shared.next_deque.fetch_add(1, Ordering::Relaxed);
        for t in 0..tickets {
            let d = (start + t) % self.threads;
            self.shared.deques[d]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(Arc::clone(core));
        }
        // Bump under the idle lock so a worker between "scanned empty" and
        // "waiting" cannot miss the push (it either sees the jobs when it
        // re-scans under this lock, or it is already waiting and gets the
        // notification).
        drop(self.shared.idle.lock().unwrap_or_else(|e| e.into_inner()));
        self.shared.available.notify_all();
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        drop(self.shared.idle.lock().unwrap_or_else(|e| e.into_inner()));
        self.shared.available.notify_all();
        for h in self
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = h.join();
        }
    }
}

fn worker_loop(registry: Arc<Registry>, me: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&registry)));
    while let Some(job) = find_job(&registry, me) {
        let ran = job.work();
        registry.shared.jobs.fetch_add(ran, Ordering::Relaxed);
    }
}

/// Pop own deque LIFO, then the injector, then steal FIFO; park when the
/// whole pool is empty. `None` means shutdown.
fn find_job(registry: &Registry, me: usize) -> Option<Job> {
    let shared = &registry.shared;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return None;
        }
        // Own deque first (LIFO: freshest, cache-warm work) ...
        if let Some(j) = shared.deques[me]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
        {
            return Some(j);
        }
        // ... then the injector ...
        if let Some(j) = shared
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(j);
        }
        // ... then steal FIFO (oldest, largest-remaining batches).
        for off in 1..registry.threads {
            let victim = (me + off) % registry.threads;
            if let Some(j) = shared.deques[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                shared.steals.fetch_add(1, Ordering::Relaxed);
                emit(PoolEvent::TicketSteal { batch: j.id });
                return Some(j);
            }
        }
        // Nothing anywhere: sleep, then re-scan on wake. The re-scan under
        // the idle lock plus `inject`'s bump-under-lock rules out a lost
        // wakeup.
        let guard = shared.idle.lock().unwrap_or_else(|e| e.into_inner());
        let empty = shared
            .deques
            .iter()
            .all(|d| d.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
            && shared
                .injector
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty();
        if empty && !shared.shutdown.load(Ordering::Relaxed) {
            shared.parks.fetch_add(1, Ordering::Relaxed);
            drop(
                shared
                    .available
                    .wait(guard)
                    .unwrap_or_else(|e| e.into_inner()),
            );
        }
    }
}

thread_local! {
    /// Registry override for this thread: set inside `ThreadPool::install`
    /// and permanently on every pool worker, so nested parallel calls land
    /// on the pool that is already running them.
    static CURRENT: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

fn global_registry() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| {
        let threads = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            // xgs-lint: allow(no-raw-parallelism-probe): this IS the pool-sizing source logical_cores() wraps
            .unwrap_or_else(num_cpus::get);
        Registry::new(threads)
    }))
}

fn current_registry() -> Arc<Registry> {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(global_registry)
}

/// Worker count of the pool the current thread would submit to.
pub fn current_num_threads() -> usize {
    current_registry().num_threads()
}

/// Snapshot of the **global** pool's cumulative counters (the pool the
/// workspace's `par_iter` sites use unless running under
/// [`ThreadPool::install`]). Instantiates the pool if needed.
pub fn global_pool_stats() -> PoolStats {
    global_registry().stats()
}

/// Run `total` chunks of `run` across the current pool, blocking until
/// every chunk has finished and rethrowing the first panic.
fn run_batch(total: usize, run: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    let registry = current_registry();
    // SAFETY (lifetime erasure): tickets holding this `&'static` may
    // outlive the frame, but `run` is only dereferenced after a successful
    // chunk claim (`next < total`). We return only once `done == total`,
    // and `done` reaches `total` only after `next` has passed it — so by
    // the time the borrow expires, every future claim fails before
    // touching `run`. A leftover ticket is an Arc'd counter probe, nothing
    // more.
    let run_static: &'static (dyn Fn(usize) + Sync) =
        // xgs-lint: allow(no-unjustified-unsafe): lifetime erasure justified by the SAFETY note above
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(run) };
    let core: Job = Arc::new(BatchCore::new(run_static, total));
    emit(PoolEvent::InjectSend { batch: core.id });
    // The caller claims chunks too, so only `total - 1` tickets can ever
    // be useful; completion does not depend on any of them running.
    let tickets = registry.num_threads().min(total.saturating_sub(1));
    registry.inject(&core, tickets);
    let ran = core.work();
    registry
        .shared
        .inline_jobs
        .fetch_add(ran, Ordering::Relaxed);
    // Wait out chunks claimed by pool workers that are still running.
    {
        let mut f = core.finished.lock().unwrap_or_else(|e| e.into_inner());
        while !*f {
            f = core.finished_cv.wait(f).unwrap_or_else(|e| e.into_inner());
        }
    }
    // Acquire pairs with the Release on the final `done` increment.
    core.done.load(Ordering::Acquire);
    emit(PoolEvent::BatchJoin {
        batch: core.id,
        chunks: total as u64,
    });
    let payload = core.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// Items per chunk for an `n`-item batch: coarse enough to amortize the
/// claim, fine enough that `threads` workers stay balanced.
fn chunk_len(n: usize, threads: usize) -> usize {
    (n / (threads * 8)).max(1)
}

// ----------------------------------------------------------- thread pool

/// Error building a [`ThreadPool`] (kept for API parity with upstream; the
/// in-tree builder cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "could not build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicitly sized pool, mirroring upstream's API subset.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// `0` (the default) means one worker per logical CPU.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            // xgs-lint: allow(no-raw-parallelism-probe): builder default mirrors the global pool's sizing source
            num_cpus::get()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            registry: Registry::new(threads),
        })
    }
}

/// An explicitly sized pool. Parallel calls made inside
/// [`ThreadPool::install`] (and from this pool's own workers) run here
/// instead of the global pool — how the test suite proves pool-size
/// invariance (1 worker vs N must be bitwise identical).
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Cumulative counters for this pool.
    pub fn stats(&self) -> PoolStats {
        self.registry.stats()
    }

    /// Run `f` with this pool as the current thread's submission target,
    /// restoring the previous target afterwards (panic-safe).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<Registry>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.registry)));
        let _restore = Restore(prev);
        f()
    }
}

// ------------------------------------------------------------ par_iter

/// `par_iter()` on slices and anything derefing to one (e.g. `Vec`).
pub trait IntoParallelRefIterator<T> {
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let slice = self.slice;
        let threads = current_num_threads();
        let per = chunk_len(slice.len(), threads);
        let chunks = slice.len().div_ceil(per);
        run_batch(chunks, &|ci| {
            let start = ci * per;
            let end = (start + per).min(slice.len());
            for item in &slice[start..end] {
                f(item);
            }
        });
    }
}

/// The result of [`ParIter::map`]: a lazy parallel map, realized by
/// `collect` (order-preserving) or `for_each`.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Parallel map with **order-preserving** collection: element `i` of
    /// the output is `f(&input[i])` regardless of pool size or schedule.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let slice = self.slice;
        let f = &self.f;
        let n = slice.len();
        let threads = current_num_threads();
        let per = chunk_len(n, threads);
        let chunks = n.div_ceil(per);
        // One slot per chunk: filled exactly once by whichever thread
        // claims the chunk, then drained in index order. No unsafe,
        // panic-safe (partially computed chunks drop normally), and only
        // `U: Send` is required.
        let slots: Vec<Mutex<Option<Vec<U>>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        run_batch(chunks, &|ci| {
            let start = ci * per;
            let end = (start + per).min(n);
            let out: Vec<U> = slice[start..end].iter().map(f).collect();
            *slots[ci].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
        });
        let mut all = Vec::with_capacity(n);
        for s in slots {
            let part = s
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("batch completed, every chunk slot is set");
            all.extend(part);
        }
        all.into_iter().collect()
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = self.f;
        let slice = self.slice;
        ParIter { slice }.for_each(|item| g(f(item)));
    }
}

// ------------------------------------------------------- par_chunks_mut

/// `par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk: chunk_size,
        }
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut {
            slice: self.slice,
            chunk: self.chunk,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, c)| f(c));
    }
}

/// [`ParChunksMut`] with chunk indices attached.
pub struct EnumChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> EnumChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let chunk = self.chunk;
        let chunks = len.div_ceil(chunk);
        let base = self.slice.as_mut_ptr() as usize;
        run_batch(chunks, &|ci| {
            let start = ci * chunk;
            let end = (start + chunk).min(len);
            // SAFETY: chunk `ci` covers `[start, end)` and chunk ranges
            // are pairwise disjoint (each batch index is claimed exactly
            // once), so each reconstructed sub-slice is an exclusive borrow
            // of its own region for the duration of the call; the parent
            // `&mut` borrow outlives the batch because `run_batch` blocks
            // until every chunk is done.
            let sub =
                // xgs-lint: allow(no-unjustified-unsafe): disjoint chunk ranges per the SAFETY note above
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start) };
            f((ci, sub));
        });
    }
}

// ------------------------------------------------------------------ tests

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AOrd};

    #[test]
    fn par_iter_map_collect() {
        let v = [1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut data = vec![0usize; 6];
        data.par_chunks_mut(2).enumerate().for_each(|(j, chunk)| {
            for c in chunk {
                *c = j;
            }
        });
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn collect_preserves_order_at_scale() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 3 + 1).collect();
        for (i, o) in out.iter().enumerate() {
            assert_eq!(*o, i * 3 + 1);
        }
    }

    #[test]
    fn pool_actually_runs_on_multiple_threads() {
        // 64 sleepy items on a 4-thread pool: more than one distinct
        // thread id must participate (the caller is one of them).
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(std::collections::HashSet::new());
        let v: Vec<u32> = (0..64).collect();
        pool.install(|| {
            v.par_iter().for_each(|_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(ids.lock().unwrap().len() >= 2);
        let stats = pool.stats();
        assert!(stats.jobs > 0, "pool workers never ran a chunk: {stats:?}");
    }

    #[test]
    fn one_thread_pool_matches_many() {
        let v: Vec<u64> = (0..997).collect();
        let run = |threads| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| -> Vec<u64> {
                v.par_iter().map(|&x| x.wrapping_mul(0x9E37) ^ 7).collect()
            })
        };
        assert_eq!(run(1), run(5));
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let v: Vec<i32> = (0..100).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                v.par_iter().for_each(|&x| {
                    if x == 37 {
                        panic!("chunk 37 exploded");
                    }
                });
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("exploded"), "unexpected payload {msg}");
        // The pool is poisoned-job-free and immediately reusable.
        let sum: Vec<i32> = pool.install(|| v.par_iter().map(|&x| x + 1).collect());
        assert_eq!(sum.len(), 100);
        assert_eq!(sum[99], 100);
    }

    #[test]
    fn nested_par_iter_inside_pool_worker_does_not_deadlock() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let outer: Vec<usize> = (0..8).collect();
        let total = AtomicUsize::new(0);
        pool.install(|| {
            outer.par_iter().for_each(|&o| {
                let inner: Vec<usize> = (0..50).collect();
                let s: Vec<usize> = inner.par_iter().map(|&i| i + o).collect();
                total.fetch_add(s.iter().sum::<usize>(), AOrd::Relaxed);
            });
        });
        // sum_o sum_i (i + o) = 8 * (49*50/2) + 50 * (0..8).sum()
        assert_eq!(total.load(AOrd::Relaxed), 8 * 1225 + 50 * 28);
    }

    #[test]
    fn empty_slice_and_oversized_chunks() {
        let empty: Vec<f64> = Vec::new();
        let out: Vec<f64> = empty.par_iter().map(|x| x * 2.0).collect();
        assert!(out.is_empty());
        let mut nothing: Vec<u8> = Vec::new();
        nothing.par_chunks_mut(16).enumerate().for_each(|(_, _)| {
            panic!("no chunks on an empty slice");
        });
        // chunk size > len: exactly one chunk, index 0, full slice.
        let mut small = vec![1u8, 2, 3];
        let seen = AtomicUsize::new(0);
        small.par_chunks_mut(1000).enumerate().for_each(|(j, c)| {
            assert_eq!(j, 0);
            assert_eq!(c.len(), 3);
            seen.fetch_add(1, AOrd::Relaxed);
            for x in c {
                *x += 1;
            }
        });
        assert_eq!(seen.load(AOrd::Relaxed), 1);
        assert_eq!(small, vec![2, 3, 4]);
    }

    #[test]
    fn stats_monotone_and_delta() {
        let before = global_pool_stats();
        let v: Vec<u32> = (0..256).collect();
        let _: Vec<u32> = v.par_iter().map(|&x| x ^ 1).collect();
        let after = global_pool_stats();
        let d = after.since(&before);
        assert!(d.jobs + d.inline_jobs > 0, "no chunks recorded: {d:?}");
        assert_eq!(after.threads, current_num_threads());
    }
}
